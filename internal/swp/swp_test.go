package swp

import (
	"testing"

	"metaopt/internal/analysis"
	"metaopt/internal/ir"
	"metaopt/internal/lang"
	"metaopt/internal/machine"
	"metaopt/internal/transform"
)

func graphOf(t *testing.T, src string, u int) *analysis.Graph {
	t.Helper()
	k, err := lang.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if u > 1 {
		l, _, err = transform.Unroll(l, u)
		if err != nil {
			t.Fatalf("unroll: %v", err)
		}
	}
	return analysis.Build(l, machine.Itanium2())
}

func schedule(t *testing.T, src string, u int) (*analysis.Graph, *Result) {
	t.Helper()
	g := graphOf(t, src, u)
	r, err := Schedule(g, g.MII())
	if err != nil {
		t.Fatalf("swp: %v", err)
	}
	if err := r.Verify(g); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return g, r
}

const daxpy = `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`

func TestDaxpyPipelinesToSmallII(t *testing.T) {
	_, r := schedule(t, daxpy, 1)
	// 7 ops on a 6-issue machine with ample units: II of 2 is achievable
	// (3 memory ops on 4 M units, 1 F op, 1 I op, 1 B op).
	if r.II > 2 {
		t.Errorf("II = %d, want <= 2", r.II)
	}
	if r.Stages < 2 {
		t.Errorf("stages = %d: a long-latency chain must span stages", r.Stages)
	}
}

func TestReductionIIBoundByRecurrence(t *testing.T) {
	g, r := schedule(t, `
kernel dot lang=fortran {
	double a[], b[];
	double s;
	for i = 0 .. 1024 { s = s + a[i]*b[i]; }
}`, 1)
	m := machine.Itanium2()
	if r.II < m.FPLat {
		t.Errorf("II = %d beats the recurrence bound %d", r.II, m.FPLat)
	}
	if g.MII() != m.FPLat {
		t.Errorf("MII = %d, want %d", g.MII(), m.FPLat)
	}
}

func TestFractionalIIFromUnrolling(t *testing.T) {
	// 3 FP ops per iteration on 2 F units: rolled II = 2 (wasting half a
	// slot); unrolled by 2, II = 3 for two iterations = 1.5 per iteration.
	src := `
kernel f3 lang=fortran {
	double a[], b[], c[], d[];
	for i = 0 .. 4096 { d[i] = a[i]*b[i] + a[i]*c[i] + b[i]*c[i]; }
}`
	_, r1 := schedule(t, src, 1)
	_, r2 := schedule(t, src, 2)
	per1 := float64(r1.II)
	per2 := float64(r2.II) / 2
	if per2 >= per1 {
		t.Errorf("unrolling did not improve per-iteration II: %.2f vs %.2f", per2, per1)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	g, r := schedule(t, daxpy, 1)
	for i := range r.Cycle {
		r.Cycle[i] = 0
	}
	if err := r.Verify(g); err == nil {
		t.Error("expected verification failure")
	}
}

func TestRegisterDemandGrowsWithUnroll(t *testing.T) {
	_, r1 := schedule(t, daxpy, 1)
	_, r8 := schedule(t, daxpy, 8)
	if r8.RegsFP <= r1.RegsFP {
		t.Errorf("fp demand: u8 %d <= u1 %d", r8.RegsFP, r1.RegsFP)
	}
}

func TestSpillsOnTinyRegisterFile(t *testing.T) {
	k, err := lang.ParseKernel(daxpy)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatal(err)
	}
	l8, _, err := transform.Unroll(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Itanium2()
	tiny := *m
	tiny.FPRegs = 3
	tiny.RotatingRegs = 3
	g := analysis.Build(l8, &tiny)
	r, err := Schedule(g, g.MII())
	if err != nil {
		t.Fatal(err)
	}
	if r.SpillCycles == 0 {
		t.Errorf("expected spills with 3 FP regs: %+v", r)
	}
}

func TestAllFactorsVerify(t *testing.T) {
	srcs := []string{
		daxpy,
		`kernel dot lang=fortran { double a[], b[]; double s; for i = 0 .. 512 { s = s + a[i]*b[i]; } }`,
		`kernel stencil lang=c { double a[], b[]; noalias; for i = 1 .. 511 { b[i] = a[i-1] + a[i] + a[i+1]; } }`,
		`kernel divloop lang=fortran { double a[], b[], o[]; for i = 0 .. 128 { o[i] = a[i] / b[i]; } }`,
		`kernel pred lang=c { double a[], b[]; for i = 0 .. 100 { if (a[i] > 0.0) { b[i] = a[i]; } } }`,
	}
	for _, src := range srcs {
		for u := 1; u <= 8; u *= 2 {
			g := graphOf(t, src, u)
			r, err := Schedule(g, g.MII())
			if err != nil {
				t.Fatalf("%v (u=%d)", err, u)
			}
			if err := r.Verify(g); err != nil {
				t.Fatalf("%v (u=%d)", err, u)
			}
			if r.II < 1 || r.Stages < 1 {
				t.Errorf("degenerate result %+v (u=%d)", r, u)
			}
		}
	}
}

func TestEmptyLoop(t *testing.T) {
	g := &analysis.Graph{Mach: machine.Itanium2(), Loop: ir.NewLoop("empty")}
	r, err := Schedule(g, 1)
	if err != nil || r.II != 1 {
		t.Errorf("empty: %v %+v", err, r)
	}
}
