package swp

import (
	"strings"
	"testing"
)

func TestDumpRendersKernel(t *testing.T) {
	g, r := schedule(t, daxpy, 2)
	out := r.Dump(g)
	for _, want := range []string{"modulo schedule of daxpy", "II=", "stages", "[s", "register demand"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Every modulo slot appears as a row.
	for slot := 0; slot < r.II; slot++ {
		if !strings.Contains(out, "\n") {
			t.Fatalf("dump has no rows:\n%s", out)
		}
	}
}

func TestDumpMarksSpills(t *testing.T) {
	g, r := schedule(t, daxpy, 1)
	r.SpillCycles = 9
	if !strings.Contains(r.Dump(g), "9 spill cycles") {
		t.Error("dump does not mention spill cycles")
	}
}
