package swp

import (
	"fmt"
	"sort"
	"strings"

	"metaopt/internal/analysis"
)

// Dump renders the modulo schedule as a kernel table: one row per modulo
// slot (II rows total), each op annotated with its pipeline stage. This is
// the standard way software-pipelining papers present kernels.
func (r *Result) Dump(g *analysis.Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "modulo schedule of %s: II=%d, %d stages, %d ops",
		g.Loop.Name, r.II, r.Stages, len(g.Ops))
	if r.SpillCycles > 0 {
		fmt.Fprintf(&sb, ", %d spill cycles", r.SpillCycles)
	}
	sb.WriteByte('\n')

	type placed struct {
		op    int
		stage int
	}
	rows := make([][]placed, r.II)
	for i := range g.Ops {
		slot := r.Cycle[i] % r.II
		rows[slot] = append(rows[slot], placed{op: i, stage: r.Cycle[i] / r.II})
	}
	for slot := 0; slot < r.II; slot++ {
		sort.Slice(rows[slot], func(a, b int) bool { return rows[slot][a].stage < rows[slot][b].stage })
		cells := make([]string, 0, len(rows[slot]))
		for _, p := range rows[slot] {
			op := g.Ops[p.op]
			label := fmt.Sprintf("v%d:%s", op.ID, op.Code)
			if op.Mem != nil {
				label = fmt.Sprintf("v%d:%s %s", op.ID, op.Code, op.Mem)
			}
			cells = append(cells, fmt.Sprintf("[s%d] %s", p.stage, label))
		}
		fmt.Fprintf(&sb, "%3d | %s\n", slot, strings.Join(cells, "  "))
	}
	fmt.Fprintf(&sb, "register demand: %d FP, %d int\n", r.RegsFP, r.RegsInt)
	return sb.String()
}
