// Package swp implements software pipelining by iterative modulo scheduling
// (Rau's IMS): it finds the smallest initiation interval II at which a new
// loop iteration can be started every II cycles under the machine's
// resource and recurrence constraints. Loop unrolling interacts with the
// pipeliner through fractional initiation intervals: a loop whose resource
// bound is 3/2 wastes half a cycle per iteration at II=2 rolled, but
// unrolled twice it runs at II=3 for two iterations — exactly the effect
// the paper's second experiment (Figure 5) measures.
package swp

import (
	"fmt"
	"slices"
	"sync"

	"metaopt/internal/analysis"
	"metaopt/internal/ir"
	"metaopt/internal/machine"
)

// state is the reusable scratch for one modulo-scheduling attempt. The II
// search calls tryII many times per loop and the labeler pipelines every
// candidate body, so the per-attempt slices are pooled; only the winning
// cycle assignment is copied out into the Result.
type state struct {
	height   []int
	cycle    []int
	prevTime []int
	order    []int
	work     []int
	placed   []bool
	unitUse  [machine.NumUnitKinds][]int
	finalUse [machine.NumUnitKinds][]int
	issueUse []int
}

var statePool = sync.Pool{New: func() any { return new(state) }}

// grow returns sl resliced to length n within capacity, zeroed, allocating
// only when capacity is insufficient.
func grow(sl []int, n int) []int {
	if cap(sl) < n {
		return make([]int, n)
	}
	sl = sl[:n]
	clear(sl)
	return sl
}

func growBool(sl []bool, n int) []bool {
	if cap(sl) < n {
		return make([]bool, n)
	}
	sl = sl[:n]
	clear(sl)
	return sl
}

// Result is a modulo schedule for one loop body.
type Result struct {
	II     int   // achieved initiation interval
	Cycle  []int // absolute issue cycle per op
	Stages int   // pipeline depth in stages of II cycles

	// Register demand under modulo variable expansion.
	RegsFP  int
	RegsInt int

	// SpillCycles is nonzero when the register files cannot hold the
	// pipelined values even at the maximum II attempted.
	SpillCycles int
}

// Schedule modulo-schedules the body of g, starting the II search at mii
// (callers pass the analysis MII estimate; the search self-corrects upward
// if the estimate is low). It fails only for pathological inputs where no
// II up to the cap admits a schedule.
func Schedule(g *analysis.Graph, mii int) (*Result, error) {
	n := len(g.Ops)
	if n == 0 {
		return &Result{II: 1, Stages: 1}, nil
	}
	if mii < 1 {
		mii = 1
	}
	maxII := 4*mii + 64
	st := statePool.Get().(*state)
	defer statePool.Put(st)
	var lastErr error
	for ii := mii; ii <= maxII; ii++ {
		cycles, ok := tryII(g, ii, st)
		if !ok {
			continue
		}
		res := finish(g, ii, cycles)
		if res.SpillCycles == 0 {
			return res, nil
		}
		// Register overflow: retry at a higher II (less overlap, fewer
		// simultaneously-live values); keep the best spilling schedule as
		// a fallback.
		if lastErr == nil {
			lastErr = fmt.Errorf("swp: %s: register overflow at II=%d", g.Loop.Name, ii)
		}
		if ii == maxII {
			return res, nil
		}
		// Try a few higher IIs; if demand never fits, accept spills.
		if ii >= mii+8 {
			return res, nil
		}
	}
	return nil, fmt.Errorf("swp: %s: no feasible II in [%d,%d]", g.Loop.Name, mii, maxII)
}

// tryII attempts one iterative-modulo-scheduling pass at the given II
// using the pooled scratch state.
func tryII(g *analysis.Graph, ii int, st *state) ([]int, bool) {
	n := len(g.Ops)
	m := g.Mach

	// Height priority (same-iteration critical path to sinks).
	height := grow(st.height, n)
	st.height = height
	for i := n - 1; i >= 0; i-- {
		height[i] = m.Latency(g.Ops[i])
		for _, e := range g.Out[i] {
			if e.Dist != 0 {
				continue
			}
			if h := e.Lat + height[e.To]; h > height[i] {
				height[i] = h
			}
		}
	}

	cycle := grow(st.cycle, n)
	placed := growBool(st.placed, n)
	prevTime := grow(st.prevTime, n)
	st.cycle, st.placed, st.prevTime = cycle, placed, prevTime
	for i := range prevTime {
		prevTime[i] = -1
	}

	// Modulo reservation table: usage per unit kind per modulo slot, plus
	// issue slots.
	unitUse := st.unitUse
	for k := range unitUse {
		unitUse[k] = grow(unitUse[k], ii)
	}
	st.unitUse = unitUse
	issueUse := grow(st.issueUse, ii)
	st.issueUse = issueUse

	reserve := func(op, at int, dir int) {
		kind := m.UnitFor(g.Ops[op].Code)
		for j := 0; j < m.BlockCycles(g.Ops[op].Code); j++ {
			unitUse[kind][(at+j)%ii] += dir
		}
		issueUse[at%ii] += dir
	}
	fits := func(op, at int) bool {
		kind := m.UnitFor(g.Ops[op].Code)
		if issueUse[at%ii] >= m.IssueWidth {
			return false
		}
		block := m.BlockCycles(g.Ops[op].Code)
		// An unpipelined op whose block span exceeds the II wraps around
		// the modulo table and demands some slots more than once.
		span := block
		if span > ii {
			span = ii
		}
		for j := 0; j < span; j++ {
			demand := (block-1-j)/ii + 1
			if unitUse[kind][(at+j)%ii]+demand > m.Units[kind] {
				return false
			}
		}
		return true
	}

	// Worklist ordered by priority: height descending, index ascending —
	// the same total order the former stable sort of 0..n-1 produced.
	order := grow(st.order, n)
	st.order = order
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if height[a] != height[b] {
			return height[b] - height[a]
		}
		return a - b
	})

	work := append(st.work[:0], order...)
	head := 0
	budget := n * 16

	for head < len(work) {
		if budget--; budget < 0 {
			st.work = work
			return nil, false
		}
		op := work[head]
		head++

		// Earliest start given scheduled predecessors.
		estart := 0
		for _, e := range g.In[op] {
			if !placed[e.From] {
				continue
			}
			if t := cycle[e.From] + e.Lat - ii*e.Dist; t > estart {
				estart = t
			}
		}
		// Find a resource-feasible slot within one II of estart.
		at := -1
		for t := estart; t < estart+ii; t++ {
			if fits(op, t) {
				at = t
				break
			}
		}
		forced := false
		if at < 0 {
			at = estart
			forced = true
		}
		// Progress rule: never reschedule an op at or before its previous
		// slot when forcing.
		if at <= prevTime[op] {
			at = prevTime[op] + 1
			forced = true
		}

		if forced {
			// Evict resource conflicts at the target slot.
			for other := 0; other < n; other++ {
				if !placed[other] {
					continue
				}
				if conflicts(g, m, ii, other, cycle[other], op, at) {
					reserve(other, cycle[other], -1)
					placed[other] = false
					work = append(work, other)
				}
			}
		}
		cycle[op] = at
		prevTime[op] = at
		placed[op] = true
		reserve(op, at, +1)

		// Unschedule any successor whose dependence is now violated.
		for _, e := range g.Out[op] {
			if !placed[e.To] || e.To == op {
				continue
			}
			if cycle[op]+e.Lat-ii*e.Dist > cycle[e.To] {
				reserve(e.To, cycle[e.To], -1)
				placed[e.To] = false
				work = append(work, e.To)
			}
		}
		for _, e := range g.In[op] {
			if !placed[e.From] || e.From == op {
				continue
			}
			if cycle[e.From]+e.Lat-ii*e.Dist > cycle[op] {
				reserve(e.From, cycle[e.From], -1)
				placed[e.From] = false
				work = append(work, e.From)
			}
		}
	}

	st.work = work

	// Final verification: dependences and the modulo reservation table
	// (forced placements may have oversubscribed an infeasible II).
	for _, e := range g.Edges {
		if cycle[e.From]+e.Lat-ii*e.Dist > cycle[e.To] {
			return nil, false
		}
	}
	finalUse := st.finalUse
	for k := range finalUse {
		finalUse[k] = grow(finalUse[k], ii)
	}
	st.finalUse = finalUse
	for i, op := range g.Ops {
		kind := m.UnitFor(op.Code)
		for j := 0; j < m.BlockCycles(op.Code); j++ {
			slot := (cycle[i] + j) % ii
			finalUse[kind][slot]++
			if finalUse[kind][slot] > m.Units[kind] {
				return nil, false
			}
		}
	}
	// Normalize so the earliest op is at cycle 0. Shifting every cycle by
	// the same amount rotates the reservation table uniformly, which
	// preserves feasibility.
	min := cycle[0]
	for _, c := range cycle {
		if c < min {
			min = c
		}
	}
	// The scratch cycle slice is reused by the next attempt; the winning
	// schedule is copied out for the Result to own.
	out := make([]int, n)
	for i := range cycle {
		out[i] = cycle[i] - min
	}
	return out, true
}

// conflicts reports whether two placed ops collide on a functional unit or
// issue slot in the modulo reservation table.
func conflicts(g *analysis.Graph, m *machine.Desc, ii int, a, aCyc, b, bCyc int) bool {
	if a == b {
		return false
	}
	// Issue-slot collision.
	if aCyc%ii == bCyc%ii && issueLimited(g, m, ii, aCyc%ii) {
		return true
	}
	ka := m.UnitFor(g.Ops[a].Code)
	kb := m.UnitFor(g.Ops[b].Code)
	if ka != kb {
		return false
	}
	for i := 0; i < m.BlockCycles(g.Ops[a].Code); i++ {
		for j := 0; j < m.BlockCycles(g.Ops[b].Code); j++ {
			if (aCyc+i)%ii == (bCyc+j)%ii {
				return true
			}
		}
	}
	return false
}

// issueLimited reports whether the issue slot at the given modulo time is
// already at capacity.
func issueLimited(g *analysis.Graph, m *machine.Desc, ii, slot int) bool {
	// Conservative: treat issue conflicts as real only on narrow machines.
	return m.IssueWidth <= 2
}

// finish packages a feasible modulo schedule and computes register demand
// under modulo variable expansion: a value live for L cycles needs
// ceil(L/II) registers.
func finish(g *analysis.Graph, ii int, cycle []int) *Result {
	res := &Result{II: ii, Cycle: cycle}
	last := 0
	for _, c := range cycle {
		if c > last {
			last = c
		}
	}
	res.Stages = last/ii + 1

	m := g.Mach
	demFP, demInt := 0, 0
	for i, op := range g.Ops {
		if !op.Code.HasResult() {
			continue
		}
		def := cycle[i]
		end := def
		for _, e := range g.Out[i] {
			if e.Kind != analysis.EdgeData {
				continue
			}
			if t := cycle[e.To] + ii*e.Dist; t > end {
				end = t
			}
		}
		need := (end - def + ii - 1) / ii
		if need < 1 {
			need = 1
		}
		if op.FP {
			demFP += need
		} else {
			demInt += need
		}
	}
	for _, p := range g.Loop.Params {
		if p.Code != ir.OpParam {
			continue
		}
		if p.FP {
			demFP++
		} else {
			demInt++
		}
	}
	res.RegsFP = demFP
	res.RegsInt = demInt

	availFP := m.FPRegs
	availInt := m.IntRegs
	if m.RotatingRegs > 0 {
		if m.RotatingRegs < availFP {
			availFP = m.RotatingRegs
		}
		if m.RotatingRegs < availInt {
			availInt = m.RotatingRegs
		}
	}
	spills := 0
	if demFP > availFP {
		spills += demFP - availFP
	}
	if demInt > availInt {
		spills += demInt - availInt
	}
	res.SpillCycles = spills * m.SpillCost
	return res
}

// Verify checks every dependence edge under the modulo constraint.
func (r *Result) Verify(g *analysis.Graph) error {
	for _, e := range g.Edges {
		if r.Cycle[e.From]+e.Lat-r.II*e.Dist > r.Cycle[e.To] {
			return fmt.Errorf("swp: %s: edge v%d→v%d (lat %d dist %d) violated at II=%d",
				g.Loop.Name, g.Ops[e.From].ID, g.Ops[e.To].ID, e.Lat, e.Dist, r.II)
		}
	}
	// Modulo resource check.
	m := g.Mach
	var unitUse [machine.NumUnitKinds][]int
	for k := range unitUse {
		unitUse[k] = make([]int, r.II)
	}
	for i, op := range g.Ops {
		kind := m.UnitFor(op.Code)
		for j := 0; j < m.BlockCycles(op.Code); j++ {
			slot := (r.Cycle[i] + j) % r.II
			unitUse[kind][slot]++
			if unitUse[kind][slot] > m.Units[kind] {
				return fmt.Errorf("swp: %s: unit %s oversubscribed at modulo slot %d (II=%d)",
					g.Loop.Name, kind, slot, r.II)
			}
		}
	}
	return nil
}
