package unroll

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"metaopt/internal/ml"
	"metaopt/internal/ml/nn"
	"metaopt/internal/ml/svm"
	"metaopt/internal/ml/tree"
)

// PersistVersion is the predictor artifact format this build writes.
// LoadPredictor accepts any version up to it (0 means a legacy blob saved
// before the format was versioned) and rejects anything newer.
const PersistVersion = 1

// predictorEnvelope wraps a serialized model with everything needed to
// reconstruct the predictor: the format version, a content fingerprint,
// the algorithm, the machine, and the feature subset it was trained on.
type predictorEnvelope struct {
	Version     int             `json:"version,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Algorithm   Algorithm       `json:"algorithm"`
	Machine     string          `json:"machine"`
	Features    []int           `json:"features,omitempty"`
	Model       json.RawMessage `json:"model"`
}

// savedAlgorithm maps a classifier back to the algorithm tag written into
// the envelope. ECOC models deserialize through the same svm.Model type,
// so they save as LSSVM.
func savedAlgorithm(c ml.Classifier) (Algorithm, error) {
	switch c.(type) {
	case *nn.Classifier:
		return NearNeighbor, nil
	case *svm.Model:
		return LSSVM, nil
	case *svm.RegModel:
		return Regress, nil
	case *tree.Tree:
		return DecisionTree, nil
	case *tree.Ensemble:
		return BoostedTree, nil
	case json.Marshaler:
		return SMOSVM, nil
	}
	return "", fmt.Errorf("unroll: predictor type %T is not serializable", c)
}

// fingerprintOf hashes the envelope fields that define the model's
// behavior. The model JSON is compacted first — Save's indenting encoder
// reformats the nested raw message, so hashing the canonical form keeps
// the fingerprint verifiable on load and stable across round trips.
func fingerprintOf(alg Algorithm, mach string, feats []int, model []byte) string {
	var compact bytes.Buffer
	if err := json.Compact(&compact, model); err != nil {
		compact.Reset()
		compact.Write(model)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%v\x00", alg, mach, feats)
	h.Write(compact.Bytes())
	return hex.EncodeToString(h.Sum(nil))
}

// computeFingerprint serializes the classifier and hashes the predictor's
// identity, as Save would record it.
func (p *Predictor) computeFingerprint() (string, error) {
	alg, err := savedAlgorithm(p.c)
	if err != nil {
		return "", err
	}
	raw, err := json.Marshal(p.c)
	if err != nil {
		return "", err
	}
	return fingerprintOf(alg, p.mach.Name, p.feats, raw), nil
}

// Save serializes a trained predictor so a compiler can load it at startup
// — the paper's point that "the learned classifier can easily be
// incorporated into a compiler". The artifact records the persist format
// version and a content fingerprint alongside the model.
func (p *Predictor) Save(w io.Writer) error {
	alg, err := savedAlgorithm(p.c)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(p.c)
	if err != nil {
		return err
	}
	env := predictorEnvelope{
		Version:     PersistVersion,
		Fingerprint: fingerprintOf(alg, p.mach.Name, p.feats, raw),
		Algorithm:   alg,
		Machine:     p.mach.Name,
		Features:    p.feats,
		Model:       raw,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(env)
}

// LoadPredictor restores a predictor saved by Save. It rejects artifacts
// written by a newer format version, validates the recorded fingerprint
// when one is present, and still loads legacy (unversioned) blobs.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var env predictorEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("unroll: load predictor: %w", err)
	}
	if env.Version > PersistVersion {
		return nil, fmt.Errorf("unroll: predictor artifact uses format v%d but this build understands up to v%d; upgrade metaopt or re-save the model with this build's 'metaopt train'", env.Version, PersistVersion)
	}
	var m *Machine
	switch env.Machine {
	case "", "itanium2":
		m = Itanium2()
	case "embedded2":
		m = Embedded()
	case "wide8":
		m = Wide()
	default:
		return nil, fmt.Errorf("unroll: unknown machine %q", env.Machine)
	}
	for _, j := range env.Features {
		if j < 0 || j >= NumFeatures {
			return nil, fmt.Errorf("unroll: load predictor: feature index %d out of range [0,%d)", j, NumFeatures)
		}
	}
	var c ml.Classifier
	switch env.Algorithm {
	case NearNeighbor:
		c = &nn.Classifier{}
	case LSSVM, LSSVMECOC:
		c = &svm.Model{}
	case Regress:
		c = &svm.RegModel{}
	case DecisionTree:
		c = &tree.Tree{}
	case BoostedTree:
		c = &tree.Ensemble{}
	case SMOSVM:
		c = svm.NewSMOModel()
	default:
		return nil, fmt.Errorf("unroll: unknown algorithm %q", env.Algorithm)
	}
	if err := json.Unmarshal(env.Model, c); err != nil {
		return nil, fmt.Errorf("unroll: load predictor: %w", err)
	}
	fp := fingerprintOf(env.Algorithm, m.Name, env.Features, env.Model)
	if env.Fingerprint != "" && env.Fingerprint != fp {
		return nil, fmt.Errorf("unroll: load predictor: fingerprint mismatch (artifact records %.12s…, contents hash to %.12s…): artifact corrupted or hand-edited", env.Fingerprint, fp)
	}
	return &Predictor{c: c, mach: m, feats: env.Features, version: env.Version, fingerprint: fp}, nil
}

// Explanation describes why a near-neighbor predictor chose a factor.
type Explanation struct {
	Factor    int
	Neighbors []nn.Neighbor
	// Votes counts neighborhood labels within the radius.
	VoteNeighbors int
	Agreement     float64
}

// Explain reports the nearest training loops behind a prediction and the
// neighborhood vote (near-neighbor predictors only) — the inspection tool
// the paper sketches for engineers confronting an opaque decision.
func (p *Predictor) Explain(l *Loop, k int) (*Explanation, error) {
	c, ok := p.c.(*nn.Classifier)
	if !ok {
		return nil, fmt.Errorf("unroll: explanations need a near-neighbor predictor, have %T", p.c)
	}
	v := p.project(Features(l, p.mach))
	n, agree := c.Confidence(v)
	return &Explanation{
		Factor:        p.c.Predict(v),
		Neighbors:     c.Neighbors(v, k),
		VoteNeighbors: n,
		Agreement:     agree,
	}, nil
}

// project maps a full feature vector onto the predictor's subset.
func (p *Predictor) project(full []float64) []float64 {
	if p.feats == nil {
		return full
	}
	v := make([]float64, len(p.feats))
	for k, j := range p.feats {
		v[k] = full[j]
	}
	return v
}

// projectChecked is project with bounds checking, for the error-returning
// prediction paths: a corrupt feature subset reports instead of panicking.
func (p *Predictor) projectChecked(full []float64) ([]float64, error) {
	if p.feats == nil {
		return full, nil
	}
	v := make([]float64, len(p.feats))
	for k, j := range p.feats {
		if j < 0 || j >= len(full) {
			return nil, fmt.Errorf("unroll: predictor selects feature %d but the vector has %d", j, len(full))
		}
		v[k] = full[j]
	}
	return v, nil
}

// Render formats an explanation for terminal output.
func (e *Explanation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "predicted unroll factor: %d", e.Factor)
	if e.VoteNeighbors > 0 {
		fmt.Fprintf(&sb, " (%d neighbors in radius, %.0f%% agreement)", e.VoteNeighbors, 100*e.Agreement)
	} else {
		sb.WriteString(" (no neighbors in radius: nearest-example fallback)")
	}
	sb.WriteByte('\n')
	sb.WriteString("nearest training loops:\n")
	ns := append([]nn.Neighbor(nil), e.Neighbors...)
	sort.SliceStable(ns, func(a, b int) bool { return ns[a].Dist < ns[b].Dist })
	for _, n := range ns {
		fmt.Fprintf(&sb, "  %-14s %-16s label %d  dist %.3f\n", n.Benchmark, n.Name, n.Label, n.Dist)
	}
	return sb.String()
}
