package unroll

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"metaopt/internal/ml"
	"metaopt/internal/ml/nn"
	"metaopt/internal/ml/svm"
	"metaopt/internal/ml/tree"
)

// predictorEnvelope wraps a serialized model with everything needed to
// reconstruct the predictor: the algorithm, the machine, and the feature
// subset it was trained on.
type predictorEnvelope struct {
	Algorithm Algorithm       `json:"algorithm"`
	Machine   string          `json:"machine"`
	Features  []int           `json:"features,omitempty"`
	Model     json.RawMessage `json:"model"`
}

// Save serializes a trained predictor so a compiler can load it at startup
// — the paper's point that "the learned classifier can easily be
// incorporated into a compiler".
func (p *Predictor) Save(w io.Writer) error {
	var alg Algorithm
	switch p.c.(type) {
	case *nn.Classifier:
		alg = NearNeighbor
	case *svm.Model:
		alg = LSSVM
	case *svm.RegModel:
		alg = Regress
	case *tree.Tree:
		alg = DecisionTree
	case *tree.Ensemble:
		alg = BoostedTree
	case json.Marshaler:
		alg = SMOSVM
	default:
		return fmt.Errorf("unroll: predictor type %T is not serializable", p.c)
	}
	raw, err := json.Marshal(p.c)
	if err != nil {
		return err
	}
	env := predictorEnvelope{
		Algorithm: alg,
		Machine:   p.mach.Name,
		Features:  p.feats,
		Model:     raw,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(env)
}

// LoadPredictor restores a predictor saved by Save.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var env predictorEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("unroll: load predictor: %w", err)
	}
	var m *Machine
	switch env.Machine {
	case "", "itanium2":
		m = Itanium2()
	case "embedded2":
		m = Embedded()
	case "wide8":
		m = Wide()
	default:
		return nil, fmt.Errorf("unroll: unknown machine %q", env.Machine)
	}
	var c ml.Classifier
	switch env.Algorithm {
	case NearNeighbor:
		c = &nn.Classifier{}
	case LSSVM, LSSVMECOC:
		c = &svm.Model{}
	case Regress:
		c = &svm.RegModel{}
	case DecisionTree:
		c = &tree.Tree{}
	case BoostedTree:
		c = &tree.Ensemble{}
	case SMOSVM:
		c = svm.NewSMOModel()
	default:
		return nil, fmt.Errorf("unroll: unknown algorithm %q", env.Algorithm)
	}
	if err := json.Unmarshal(env.Model, c); err != nil {
		return nil, fmt.Errorf("unroll: load predictor: %w", err)
	}
	return &Predictor{c: c, mach: m, feats: env.Features}, nil
}

// Explanation describes why a near-neighbor predictor chose a factor.
type Explanation struct {
	Factor    int
	Neighbors []nn.Neighbor
	// Votes counts neighborhood labels within the radius.
	VoteNeighbors int
	Agreement     float64
}

// Explain reports the nearest training loops behind a prediction and the
// neighborhood vote (near-neighbor predictors only) — the inspection tool
// the paper sketches for engineers confronting an opaque decision.
func (p *Predictor) Explain(l *Loop, k int) (*Explanation, error) {
	c, ok := p.c.(*nn.Classifier)
	if !ok {
		return nil, fmt.Errorf("unroll: explanations need a near-neighbor predictor, have %T", p.c)
	}
	v := p.project(Features(l, p.mach))
	n, agree := c.Confidence(v)
	return &Explanation{
		Factor:        p.c.Predict(v),
		Neighbors:     c.Neighbors(v, k),
		VoteNeighbors: n,
		Agreement:     agree,
	}, nil
}

// project maps a full feature vector onto the predictor's subset.
func (p *Predictor) project(full []float64) []float64 {
	if p.feats == nil {
		return full
	}
	v := make([]float64, len(p.feats))
	for k, j := range p.feats {
		v[k] = full[j]
	}
	return v
}

// Render formats an explanation for terminal output.
func (e *Explanation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "predicted unroll factor: %d", e.Factor)
	if e.VoteNeighbors > 0 {
		fmt.Fprintf(&sb, " (%d neighbors in radius, %.0f%% agreement)", e.VoteNeighbors, 100*e.Agreement)
	} else {
		sb.WriteString(" (no neighbors in radius: nearest-example fallback)")
	}
	sb.WriteByte('\n')
	sb.WriteString("nearest training loops:\n")
	ns := append([]nn.Neighbor(nil), e.Neighbors...)
	sort.SliceStable(ns, func(a, b int) bool { return ns[a].Dist < ns[b].Dist })
	for _, n := range ns {
		fmt.Fprintf(&sb, "  %-14s %-16s label %d  dist %.3f\n", n.Benchmark, n.Name, n.Label, n.Dist)
	}
	return sb.String()
}
