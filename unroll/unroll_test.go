package unroll_test

import (
	"bytes"
	"strings"
	"testing"

	"metaopt/unroll"
)

const daxpy = `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`

func smallDataset(t *testing.T) *unroll.Dataset {
	t.Helper()
	c, err := unroll.GenerateCorpus(5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	d, err := unroll.CollectDataset(c, unroll.CollectOptions{Seed: 1, Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseAndFeatures(t *testing.T) {
	l, err := unroll.ParseKernel(daxpy)
	if err != nil {
		t.Fatal(err)
	}
	v := unroll.Features(l, unroll.Itanium2())
	if len(v) != unroll.NumFeatures {
		t.Fatalf("features = %d", len(v))
	}
	names := unroll.FeatureNames()
	if len(names) != unroll.NumFeatures {
		t.Fatalf("names = %d", len(names))
	}
	if idx := unroll.FeatureIndex("tripcount"); idx < 0 || v[idx] != 4096 {
		t.Errorf("tripcount feature = %v at %d", v[idx], idx)
	}
	if unroll.FeatureIndex("nonexistent") != -1 {
		t.Error("FeatureIndex should return -1")
	}
}

func TestParseFileMultiple(t *testing.T) {
	loops, err := unroll.ParseFile(daxpy + `
kernel second lang=fortran { double z[]; for i = 0 .. 64 { z[i] = z[i] * 2.0; } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 2 {
		t.Fatalf("loops = %d", len(loops))
	}
}

func TestUnrollLoopAPI(t *testing.T) {
	l, err := unroll.ParseKernel(daxpy)
	if err != nil {
		t.Fatal(err)
	}
	u4, err := unroll.UnrollLoop(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u4.NumOps() <= l.NumOps() {
		t.Errorf("unrolled ops = %d vs %d", u4.NumOps(), l.NumOps())
	}
	if _, err := unroll.UnrollLoop(l, 0); err == nil {
		t.Error("expected error for factor 0")
	}
}

func TestTimerAndBest(t *testing.T) {
	l, err := unroll.ParseKernel(daxpy)
	if err != nil {
		t.Fatal(err)
	}
	tm := unroll.NewTimer(unroll.Itanium2(), false)
	t1, err := tm.Time(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Cycles <= 0 || t1.PerIter <= 0 || t1.Pipelined {
		t.Errorf("timing = %+v", t1)
	}
	best, timings, err := tm.Best(l)
	if err != nil {
		t.Fatal(err)
	}
	if best < 2 {
		t.Errorf("daxpy best factor = %d, expected meaningful unrolling", best)
	}
	if timings[best].Cycles > timings[1].Cycles {
		t.Error("best factor costs more than rolled")
	}
	if _, err := tm.Time(l, 99); err == nil {
		t.Error("expected range error")
	}
	// Pipelined mode reports II.
	tp := unroll.NewTimer(unroll.Itanium2(), true)
	ts, err := tp.Time(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Pipelined || ts.II < 1 {
		t.Errorf("swp timing = %+v", ts)
	}
}

func TestHeuristicAPI(t *testing.T) {
	l, err := unroll.ParseKernel(daxpy)
	if err != nil {
		t.Fatal(err)
	}
	for _, swp := range []bool{false, true} {
		u := unroll.Heuristic(l, unroll.Itanium2(), swp)
		if u < 1 || u > unroll.MaxFactor {
			t.Errorf("heuristic(swp=%v) = %d", swp, u)
		}
	}
}

func TestTrainPredictAllAlgorithms(t *testing.T) {
	d := smallDataset(t)
	l, err := unroll.ParseKernel(daxpy)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []unroll.Algorithm{
		unroll.NearNeighbor, unroll.LSSVM, unroll.LSSVMECOC, unroll.SMOSVM,
		unroll.Regress, unroll.DecisionTree, unroll.BoostedTree,
	} {
		p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		u := p.Predict(l)
		if u < 1 || u > unroll.MaxFactor {
			t.Errorf("%s predicted %d", alg, u)
		}
	}
	if _, err := unroll.Train(d, unroll.TrainOptions{Algorithm: "bogus"}); err == nil {
		t.Error("expected unknown-algorithm error")
	}
}

func TestConfidenceOnlyForNN(t *testing.T) {
	d := smallDataset(t)
	l, err := unroll.ParseKernel(daxpy)
	if err != nil {
		t.Fatal(err)
	}
	pNN, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pNN.Confidence(l); !ok {
		t.Error("NN predictor should report confidence")
	}
	pSVM, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.LSSVM})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pSVM.Confidence(l); ok {
		t.Error("SVM predictor should not claim NN confidence")
	}
}

func TestSelectFeaturesAndTrainDefault(t *testing.T) {
	d := smallDataset(t)
	feats, err := unroll.SelectFeatures(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) < 3 {
		t.Fatalf("selected features = %v", feats)
	}
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.LSSVM, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := unroll.ParseKernel(daxpy)
	if u := p.Predict(l); u < 1 || u > unroll.MaxFactor {
		t.Errorf("predicted %d", u)
	}
}

func TestCrossValidate(t *testing.T) {
	d := smallDataset(t)
	accNN, err := unroll.CrossValidate(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	if accNN <= 0.2 || accNN > 1 {
		t.Errorf("NN LOOCV accuracy = %v", accNN)
	}
	if _, err := unroll.CrossValidate(d, unroll.TrainOptions{Algorithm: "bogus"}); err == nil {
		t.Error("expected unknown-algorithm error")
	}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	d := smallDataset(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := unroll.LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("round trip: %d vs %d", d2.Len(), d.Len())
	}
	a, b := d.Labels(), d2.Labels()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("label %d differs", i)
		}
	}
	// A loaded dataset must train.
	if _, err := unroll.Train(d2, unroll.TrainOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	if _, err := unroll.LoadDataset(bytes.NewBufferString("{not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := unroll.LoadDataset(bytes.NewBufferString(`{"examples":[{"label":99,"features":[1]}]}`)); err == nil {
		t.Error("expected validation error")
	}
}

func TestRegressionBeatsChance(t *testing.T) {
	d := smallDataset(t)
	acc, err := unroll.CrossValidate(d, unroll.TrainOptions{Algorithm: unroll.Regress})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.2 {
		t.Errorf("regression LOOCV accuracy = %v", acc)
	}
}

func TestSaveCSV(t *testing.T) {
	d := smallDataset(t)
	var buf bytes.Buffer
	if err := d.SaveCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != d.Len()+1 {
		t.Fatalf("csv rows = %d, want %d", len(lines), d.Len()+1)
	}
	header := strings.Split(lines[0], ",")
	// benchmark + loop + 38 features + 8 cycle columns + label.
	if len(header) != 2+unroll.NumFeatures+8+1 {
		t.Fatalf("csv columns = %d", len(header))
	}
	if header[0] != "benchmark" || header[len(header)-1] != "label" {
		t.Errorf("csv header = %v...%v", header[0], header[len(header)-1])
	}
	for _, line := range lines[1:3] {
		if len(strings.Split(line, ",")) != len(header) {
			t.Fatal("ragged csv row")
		}
	}
}

func TestEvaluate(t *testing.T) {
	d := smallDataset(t)
	ev, err := unroll.Evaluate(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Examples != d.Len() {
		t.Errorf("examples = %d", ev.Examples)
	}
	var sum float64
	for _, f := range ev.RankFrac {
		sum += f
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("rank fractions sum to %v", sum)
	}
	if ev.Accuracy() != ev.RankFrac[0] {
		t.Error("Accuracy mismatch")
	}
	if ev.Confusion == nil || ev.Confusion.Total != d.Len() {
		t.Error("confusion matrix missing")
	}
	out := ev.Render()
	for _, want := range []string{"optimal", "worst", "recall", "overall accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if _, err := unroll.Evaluate(d, unroll.TrainOptions{Algorithm: "bogus"}); err == nil {
		t.Error("expected unknown-algorithm error")
	}
}
