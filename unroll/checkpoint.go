package unroll

import (
	"fmt"
	"os"

	"metaopt/internal/atomicio"
	"metaopt/internal/core"
	"metaopt/internal/par"
)

// CheckpointOptions arms crash-safe, resumable label collection. Progress
// is snapshotted to Path atomically (temp file + fsync + rename) every
// Every completed benchmarks, so a killed run loses at most Every
// benchmarks of work. A resumed run re-attaches the checkpointed
// measurements to the regenerated corpus and produces a dataset
// bit-identical to an uninterrupted one.
type CheckpointOptions struct {
	Path   string // checkpoint file; required
	Resume bool   // load Path first and skip its completed benchmarks
	Every  int    // benchmarks between snapshots; <= 0 means 8
}

// CollectDatasetCheckpointed is CollectDataset with periodic checkpoints.
// When ck.Resume is set and ck.Path exists, collection continues from it;
// the checkpoint must have been written by a run with the same seed,
// machine, runs, and SWP setting, or the resume is refused. The checkpoint
// file is left in place on success — it is a complete record of the raw
// measurements and deleting data is the caller's call.
func CollectDatasetCheckpointed(c *Corpus, opt CollectOptions, ck CheckpointOptions) (*Dataset, error) {
	if ck.Path == "" {
		return nil, fmt.Errorf("unroll: checkpointed collection needs CheckpointOptions.Path")
	}
	t := timerFor(opt)
	state := core.NewCheckpoint(t, opt.Seed)
	if ck.Resume {
		f, err := os.Open(ck.Path)
		switch {
		case err == nil:
			state, err = core.DecodeCheckpoint(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			if err := state.Compatible(t, opt.Seed); err != nil {
				return nil, fmt.Errorf("%w (delete %s to start over)", err, ck.Path)
			}
			// Worker count is provenance, not configuration: Compatible
			// ignores it, and the resuming run stamps its own parallelism so
			// the record follows the last writer.
			state.Workers = par.Limit()
		case os.IsNotExist(err):
			// Nothing to resume from; a fresh run that checkpoints.
		default:
			return nil, err
		}
	}

	pr := &core.Progress{
		Checkpoint: state,
		Every:      ck.Every,
		Save: func(s *core.Checkpoint) error {
			return atomicio.WriteFile(ck.Path, s.Encode)
		},
	}
	lb, err := core.CollectLabelsResumable(c, t, opt.Seed, pr)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: lb.Dataset(t)}, nil
}
