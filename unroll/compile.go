package unroll

import (
	"context"
	"fmt"
	"math"
	"sync"

	"metaopt/internal/ml/compiled"
)

// CompiledPredictor is a Predictor lowered into flat, serve-optimized form
// by Compile: trees flatten into contiguous node arrays, the near-neighbor
// database and SVM support vectors into dense tables with float32 mirrors.
//
// The single-query Predict path evaluates the exact float64 arithmetic of
// the interpreted classifier — answers are bit-identical — with zero
// steady-state heap allocations. The batch paths run the float32 blocked
// distance kernel across the whole batch at once; its rounding can differ
// from the interpreted path near decision boundaries, which is why the
// compiled fingerprint extends the source fingerprint with the lowering
// version tag.
type CompiledPredictor struct {
	src         *Predictor
	prog        *compiled.Program
	fingerprint string
	pool        sync.Pool // *compiledScratch
}

// compiledScratch is the pooled working set for projection and batching.
type compiledScratch struct {
	q    []float64   // one projected query
	flat []float64   // projected batch features, flat m×dim
	rows [][]float64 // row views into flat
	out  []int       // batch decisions
}

// Compile lowers a trained predictor. It fails for classifier types with
// no compiled lowering; callers keep serving the interpreted predictor in
// that case.
func Compile(p *Predictor) (*CompiledPredictor, error) {
	if p == nil {
		return nil, fmt.Errorf("unroll: compile: nil predictor")
	}
	prog, err := compiled.Lower(p.c)
	if err != nil {
		return nil, fmt.Errorf("unroll: compile: %w", err)
	}
	return &CompiledPredictor{
		src:         p,
		prog:        prog,
		fingerprint: p.fingerprint + "+" + prog.Version(),
	}, nil
}

// Source returns the interpreted predictor this was compiled from.
func (c *CompiledPredictor) Source() *Predictor { return c.src }

// Fingerprint extends the source predictor's fingerprint with the lowering
// version tag, so any evaluation-path divergence (the float32 batch
// rounding) is visible in cache keys and serving metadata.
func (c *CompiledPredictor) Fingerprint() string { return c.fingerprint }

// Version names the lowering and its rounding policy (e.g. "nn/v1+f32b").
func (c *CompiledPredictor) Version() string { return c.prog.Version() }

// Algorithm reports the source predictor's algorithm tag.
func (c *CompiledPredictor) Algorithm() Algorithm { return c.src.Algorithm() }

func (c *CompiledPredictor) getScratch() *compiledScratch {
	sc, _ := c.pool.Get().(*compiledScratch)
	if sc == nil {
		sc = &compiledScratch{q: make([]float64, NumFeatures)}
	}
	return sc
}

// project maps a full-length vector onto the predictor's feature subset
// using pooled scratch; already-projected vectors pass through.
func (c *CompiledPredictor) project(v []float64, sc *compiledScratch) ([]float64, error) {
	feats := c.src.feats
	if feats == nil || len(v) == len(feats) {
		return v, nil
	}
	if len(v) != NumFeatures {
		return nil, fmt.Errorf("unroll: feature vector has %d elements, want %d or %d", len(v), NumFeatures, len(feats))
	}
	out := sc.q[:len(feats)]
	for k, j := range feats {
		if j < 0 || j >= len(v) {
			return nil, fmt.Errorf("unroll: predictor selects feature %d but the vector has %d", j, len(v))
		}
		out[k] = v[j]
	}
	return out, nil
}

// Predict is the zero-allocation hot path: it evaluates a feature vector
// (either the predictor's projected length or the full NumFeatures) on the
// exact compiled program and clamps the answer to [1,MaxFactor]. The
// vector must be finite and correctly sized — this is the trusted inner
// loop; PredictFeatures is the checked boundary.
func (c *CompiledPredictor) Predict(v []float64) int {
	sc := c.getScratch()
	q, err := c.project(v, sc)
	if err != nil {
		c.pool.Put(sc)
		return 1
	}
	u := clampFactor(c.prog.Predict(q))
	c.pool.Put(sc)
	return u
}

// PredictFeatures mirrors Predictor.PredictFeatures on the compiled exact
// path: non-finite values are rejected at the boundary, and the answer is
// bit-identical to the interpreted predictor's.
func (c *CompiledPredictor) PredictFeatures(v []float64) (int, error) {
	for i, f := range v {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			nonFiniteRejects.Inc()
			return 0, fmt.Errorf("unroll: feature %d is not finite (%v)", i, f)
		}
	}
	sc := c.getScratch()
	q, err := c.project(v, sc)
	if err != nil {
		c.pool.Put(sc)
		return 0, err
	}
	u := clampFactor(c.prog.Predict(q))
	c.pool.Put(sc)
	return u, nil
}

// PredictCtx predicts one loop on the compiled exact path, with the same
// validation and failure reporting as Predictor.PredictCtx.
func (c *CompiledPredictor) PredictCtx(ctx context.Context, l *Loop) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	v, err := c.src.featuresOf(l)
	if err != nil {
		return 0, err
	}
	return clampFactor(c.prog.Predict(v)), nil
}

// PredictBatch predicts every loop through the compiled batch path and
// returns the factors. See PredictBatchInto for the allocation-reusing
// form.
func (c *CompiledPredictor) PredictBatch(ctx context.Context, loops []*Loop) ([]int, error) {
	out := make([]int, len(loops))
	if err := c.PredictBatchInto(ctx, loops, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatchInto extracts every loop's features and runs the whole batch
// through the compiled float32 distance path in one dispatch, writing the
// factors into out (which must have len(loops) elements). The context is
// checked between feature extractions; any failure aborts the batch.
func (c *CompiledPredictor) PredictBatchInto(ctx context.Context, loops []*Loop, out []int) error {
	if len(out) != len(loops) {
		return fmt.Errorf("unroll: batch output has %d slots for %d loops", len(out), len(loops))
	}
	sc := c.getScratch()
	defer c.pool.Put(sc)
	vs, err := c.batchFeatures(ctx, loops, sc)
	if err != nil {
		return err
	}
	sc.out = c.prog.PredictBatch(vs, sc.out)
	for i, u := range sc.out {
		out[i] = clampFactor(u)
	}
	return nil
}

// PredictFeaturesBatch runs pre-extracted feature vectors through the
// compiled batch path, writing clamped factors into out (grown when too
// small) and returning it. Vectors follow the PredictFeatures contract.
func (c *CompiledPredictor) PredictFeaturesBatch(vs [][]float64, out []int) ([]int, error) {
	if cap(out) < len(vs) {
		out = make([]int, len(vs))
	} else {
		out = out[:len(vs)]
	}
	sc := c.getScratch()
	defer c.pool.Put(sc)
	dim := len(c.src.feats)
	if c.src.feats == nil {
		dim = NumFeatures
	}
	sc.flat = growFloats(sc.flat, len(vs)*dim)
	sc.rows = growRows(sc.rows, len(vs))
	for i, v := range vs {
		for j, f := range v {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				nonFiniteRejects.Inc()
				return nil, fmt.Errorf("unroll: batch vector %d feature %d is not finite (%v)", i, j, f)
			}
		}
		q, err := c.project(v, sc)
		if err != nil {
			return nil, fmt.Errorf("unroll: batch vector %d: %w", i, err)
		}
		row := sc.flat[i*dim : (i+1)*dim]
		copy(row, q)
		sc.rows[i] = row
	}
	sc.out = c.prog.PredictBatch(sc.rows[:len(vs)], sc.out)
	for i, u := range sc.out {
		out[i] = clampFactor(u)
	}
	return out, nil
}

// batchFeatures extracts and projects every loop's features into the
// scratch arena, returning row views over one flat slab.
func (c *CompiledPredictor) batchFeatures(ctx context.Context, loops []*Loop, sc *compiledScratch) ([][]float64, error) {
	dim := len(c.src.feats)
	if c.src.feats == nil {
		dim = NumFeatures
	}
	sc.flat = growFloats(sc.flat, len(loops)*dim)
	sc.rows = growRows(sc.rows, len(loops))
	for i, l := range loops {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("unroll: batch loop %d of %d: %w", i, len(loops), err)
		}
		v, err := c.src.featuresOf(l)
		if err != nil {
			return nil, fmt.Errorf("unroll: batch loop %d of %d: %w", i, len(loops), err)
		}
		row := sc.flat[i*dim : (i+1)*dim]
		copy(row, v)
		sc.rows[i] = row
	}
	return sc.rows[:len(loops)], nil
}

func clampFactor(u int) int {
	if u < 1 {
		u = 1
	}
	if u > MaxFactor {
		u = MaxFactor
	}
	return u
}

func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

func growRows(b [][]float64, n int) [][]float64 {
	if cap(b) < n {
		return make([][]float64, n)
	}
	return b[:n]
}
