package unroll_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"metaopt/internal/core"
	"metaopt/internal/faults"
	"metaopt/internal/par"
	"metaopt/unroll"
)

// TestCheckpointResumeBitIdentical is the labeling crash-recovery chaos
// test: an injected fault kills collection partway through, the periodic
// checkpoint preserves the finished benchmarks, and the resumed run
// produces a dataset bit-identical to one collected without interruption.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	defer faults.Reset()
	corpus, err := unroll.GenerateCorpus(5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	opt := unroll.CollectOptions{Seed: 1, Runs: 5}

	// Baseline: one uninterrupted run.
	clean, err := unroll.CollectDataset(corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := clean.Save(&want); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the 4th benchmark to start labeling dies. Every=1
	// checkpoints after each finished benchmark.
	path := filepath.Join(t.TempDir(), "labels.ckpt")
	ck := unroll.CheckpointOptions{Path: path, Every: 1}
	faults.MustInstall(faults.Spec{Site: "labels.benchmark", Kind: faults.KindError, Nth: 4})
	_, err = unroll.CollectDatasetCheckpointed(corpus, opt, ck)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("interrupted run: %v, want ErrInjected", err)
	}
	faults.Reset()

	// The checkpoint captured real progress, atomically.
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("no checkpoint after interrupted run: %v", err)
	}
	partial, err := core.DecodeCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(partial.Benchmarks); n == 0 || n >= len(corpus.Benchmarks) {
		t.Fatalf("checkpoint holds %d of %d benchmarks; want partial progress", n, len(corpus.Benchmarks))
	}

	// Resume and compare bytes.
	ck.Resume = true
	resumed, err := unroll.CollectDatasetCheckpointed(corpus, opt, ck)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	var got bytes.Buffer
	if err := resumed.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("resumed dataset differs from uninterrupted run (%d vs %d bytes)", got.Len(), want.Len())
	}
}

// TestCheckpointResumeRefusesForeignConfig: resuming under a different
// seed or measurement setup must be refused, not silently spliced.
func TestCheckpointResumeRefusesForeignConfig(t *testing.T) {
	corpus, err := unroll.GenerateCorpus(5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "labels.ckpt")
	ck := unroll.CheckpointOptions{Path: path, Every: 1}
	if _, err := unroll.CollectDatasetCheckpointed(corpus, unroll.CollectOptions{Seed: 1, Runs: 5}, ck); err != nil {
		t.Fatal(err)
	}

	ck.Resume = true
	for _, opt := range []unroll.CollectOptions{
		{Seed: 2, Runs: 5},
		{Seed: 1, Runs: 7},
		{Seed: 1, Runs: 5, SWP: true},
	} {
		if _, err := unroll.CollectDatasetCheckpointed(corpus, opt, ck); err == nil {
			t.Errorf("resume with %+v accepted a foreign checkpoint", opt)
		}
	}
	// The matching config still resumes (now a pure reconstitution pass).
	if _, err := unroll.CollectDatasetCheckpointed(corpus, unroll.CollectOptions{Seed: 1, Runs: 5}, ck); err != nil {
		t.Errorf("matching config refused: %v", err)
	}
}

// TestCheckpointResumeAcrossWorkerCounts: the in-process worker count is
// provenance, not configuration — labels are deterministic per benchmark
// regardless of who measures them — so a checkpoint written under one
// -workers value must resume under another, bit-identically, even though
// the recorded Workers values differ.
func TestCheckpointResumeAcrossWorkerCounts(t *testing.T) {
	defer faults.Reset()
	defer par.SetLimit(0)
	corpus, err := unroll.GenerateCorpus(5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	opt := unroll.CollectOptions{Seed: 1, Runs: 5}

	clean, err := unroll.CollectDataset(corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := clean.Save(&want); err != nil {
		t.Fatal(err)
	}

	// Interrupt a single-worker run...
	par.SetLimit(1)
	path := filepath.Join(t.TempDir(), "labels.ckpt")
	ck := unroll.CheckpointOptions{Path: path, Every: 1}
	faults.MustInstall(faults.Spec{Site: "labels.benchmark", Kind: faults.KindError, Nth: 4})
	if _, err := unroll.CollectDatasetCheckpointed(corpus, opt, ck); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("interrupted run: %v, want ErrInjected", err)
	}
	faults.Reset()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := core.DecodeCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if partial.Workers != 1 {
		t.Fatalf("checkpoint recorded Workers=%d, want 1", partial.Workers)
	}

	// ...and resume it with four workers.
	par.SetLimit(4)
	ck.Resume = true
	resumed, err := unroll.CollectDatasetCheckpointed(corpus, opt, ck)
	if err != nil {
		t.Fatalf("resume across worker counts refused: %v", err)
	}
	var got bytes.Buffer
	if err := resumed.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("dataset differs across worker counts (%d vs %d bytes)", got.Len(), want.Len())
	}

	// The finished checkpoint now records the resuming run's worker count —
	// provenance follows the last writer.
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	final, err := core.DecodeCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if final.Workers != 4 {
		t.Fatalf("final checkpoint recorded Workers=%d, want 4", final.Workers)
	}
}

// TestCheckpointFreshRunWithResumeFlag: -resume without an existing file
// is a fresh run, not an error — so restart loops can pass -resume
// unconditionally.
func TestCheckpointFreshRunWithResumeFlag(t *testing.T) {
	corpus, err := unroll.GenerateCorpus(5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "labels.ckpt")
	d, err := unroll.CollectDatasetCheckpointed(corpus, unroll.CollectOptions{Seed: 1, Runs: 5},
		unroll.CheckpointOptions{Path: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 {
		t.Error("empty dataset")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("no checkpoint written: %v", err)
	}
}
