package unroll_test

import (
	"bytes"
	"context"
	"fmt"

	"metaopt/unroll"
)

// exampleDataset labels a small generated corpus for the training
// examples below.
func exampleDataset() *unroll.Dataset {
	c, err := unroll.GenerateCorpus(5, 0.05)
	if err != nil {
		panic(err)
	}
	d, err := unroll.CollectDataset(c, unroll.CollectOptions{Seed: 1, Runs: 3})
	if err != nil {
		panic(err)
	}
	return d
}

// The quickstart path: parse a kernel, inspect it, and sweep unroll factors
// on the machine model.
func ExampleParseKernel() {
	loop, err := unroll.ParseKernel(`
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d ops, trip %d, language %s\n", loop.Name, loop.NumOps(), loop.TripCount, loop.Lang)
	// Output:
	// daxpy: 7 ops, trip 4096, language C
}

func ExampleTimer_Best() {
	loop, _ := unroll.ParseKernel(`
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`)
	timer := unroll.NewTimer(unroll.Itanium2(), false)
	best, timings, err := timer.Best(loop)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best factor %d beats rolled: %v\n", best, timings[best].Cycles < timings[1].Cycles)
	// Output:
	// best factor 8 beats rolled: true
}

func ExampleFeatures() {
	loop, _ := unroll.ParseKernel(`
kernel dot lang=fortran {
	double a[], b[];
	double s;
	for i = 0 .. 1024 { s = s + a[i]*b[i]; }
}`)
	v := unroll.Features(loop, unroll.Itanium2())
	fmt.Printf("num_fp_ops=%.0f num_mem_ops=%.0f lang_fortran=%.0f\n",
		v[unroll.FeatureIndex("num_fp_ops")],
		v[unroll.FeatureIndex("num_mem_ops")],
		v[unroll.FeatureIndex("lang_fortran")])
	// Output:
	// num_fp_ops=1 num_mem_ops=2 lang_fortran=1
}

func ExampleUnrollLoop() {
	loop, _ := unroll.ParseKernel(`
kernel scale lang=c {
	double x[];
	noalias;
	for i = 0 .. 256 { x[i] = x[i] * 2.0; }
}`)
	unrolled, err := unroll.UnrollLoop(loop, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rolled %d ops -> unrolled-by-4 %d ops\n", loop.NumOps(), unrolled.NumOps())
	// Output:
	// rolled 6 ops -> unrolled-by-4 15 ops
}

// Serving-style usage: train once, compile the predictor into its flat
// serve-time form, and answer many loops per call through the batched
// distance path. The compiled fingerprint extends the model fingerprint
// with the lowering version, and compiled answers match the interpreted
// predictor's.
func ExamplePredictor_PredictBatch() {
	pred, err := unroll.Train(exampleDataset(), unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		panic(err)
	}
	comp, err := unroll.Compile(pred)
	if err != nil {
		panic(err)
	}
	loops, err := unroll.ParseFile(`
kernel daxpy lang=c { param double a; double x[], y[]; noalias; for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; } }
kernel dot lang=fortran { double a[], b[]; double s; for i = 0 .. 1024 { s = s + a[i]*b[i]; } }`)
	if err != nil {
		panic(err)
	}
	factors, err := comp.PredictBatch(context.Background(), loops)
	if err != nil {
		panic(err)
	}
	agree := true
	for i, l := range loops {
		u, err := pred.PredictCtx(context.Background(), l)
		if err != nil {
			panic(err)
		}
		agree = agree && u == factors[i]
	}
	fmt.Printf("compiled %s predictor (version %s)\n", comp.Algorithm(), comp.Version())
	fmt.Printf("%d loops -> %d factors, matching the interpreted model: %v\n",
		len(loops), len(factors), agree)
	// Output:
	// compiled nn predictor (version nn/v1+f32b)
	// 2 loops -> 2 factors, matching the interpreted model: true
}

// Artifacts carry a format version and a content fingerprint: both
// survive the Save/LoadPredictor round trip, and loading rejects
// artifacts written by a newer format.
func ExampleLoadPredictor() {
	pred, err := unroll.Train(exampleDataset(), unroll.TrainOptions{Algorithm: unroll.LSSVM})
	if err != nil {
		panic(err)
	}
	var artifact bytes.Buffer
	if err := pred.Save(&artifact); err != nil {
		panic(err)
	}
	loaded, err := unroll.LoadPredictor(&artifact)
	if err != nil {
		panic(err)
	}
	fmt.Printf("format v%d, fingerprint stable across round trip: %v\n",
		loaded.Version(), loaded.Fingerprint() == pred.Fingerprint())
	// Output:
	// format v1, fingerprint stable across round trip: true
}

func ExampleHeuristic() {
	loop, _ := unroll.ParseKernel(`
kernel search lang=c {
	double a[];
	double s;
	for i = 0 .. n { s = s + a[i]; if (s > 100.0) break; }
}`)
	m := unroll.Itanium2()
	fmt.Printf("early-exit loop: heuristic picks %d without SWP\n", unroll.Heuristic(loop, m, false))
	// Output:
	// early-exit loop: heuristic picks 2 without SWP
}
