package unroll

import (
	"bufio"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"metaopt/internal/colstore"
	"metaopt/internal/core"
	"metaopt/internal/ml"
	"metaopt/internal/ml/nn"
	"metaopt/internal/ml/svm"
	"metaopt/internal/ml/tree"
	"metaopt/internal/obs"
	"metaopt/internal/sim"
)

// Algorithm selects the learning algorithm for Train.
type Algorithm string

// Available algorithms.
const (
	// NearNeighbor is the paper's radius-0.3 voting classifier.
	NearNeighbor Algorithm = "nn"
	// LSSVM is the paper's least-squares SVM with one-vs-rest output codes.
	LSSVM Algorithm = "svm"
	// LSSVMECOC uses random error-correcting output codes (15 bits).
	LSSVMECOC Algorithm = "svm-ecoc"
	// SMOSVM is a soft-margin C-SVM trained by SMO.
	SMOSVM Algorithm = "smo"
	// Regress predicts the factor by kernel ridge regression and rounds.
	Regress Algorithm = "regress"
	// DecisionTree is a single CART tree.
	DecisionTree Algorithm = "tree"
	// BoostedTree is AdaBoost.SAMME over shallow CART trees — the learner
	// of the paper's closest prior work (Monsifrot et al.).
	BoostedTree Algorithm = "boosted-tree"
)

// trainerFor builds the ml.Trainer for an algorithm.
func trainerFor(opt TrainOptions) (ml.Trainer, error) {
	switch opt.Algorithm {
	case "", NearNeighbor:
		return &nn.Trainer{Radius: opt.Radius}, nil
	case LSSVM:
		return &svm.LSSVM{Gamma: opt.Gamma}, nil
	case LSSVMECOC:
		return &svm.LSSVM{Gamma: opt.Gamma, Codes: svm.Random(ml.NumClasses, 15, opt.Seed+1)}, nil
	case SMOSVM:
		return &svm.SMO{Seed: opt.Seed}, nil
	case Regress:
		return &svm.Regression{Gamma: opt.Gamma}, nil
	case DecisionTree:
		return &tree.Trainer{}, nil
	case BoostedTree:
		return &tree.Boost{}, nil
	}
	return nil, fmt.Errorf("unroll: unknown algorithm %q", opt.Algorithm)
}

// Dataset is a labeled training set of loop examples.
type Dataset struct {
	d *ml.Dataset
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return d.d.Len() }

// Labels returns the label of every example.
func (d *Dataset) Labels() []int {
	out := make([]int, d.d.Len())
	for i, e := range d.d.Examples {
		out[i] = e.Label
	}
	return out
}

// CollectOptions controls dataset collection from a corpus.
type CollectOptions struct {
	Machine *Machine // nil = Itanium 2
	SWP     bool     // label with software pipelining enabled
	Seed    int64
	Runs    int // measurement repetitions (0 = paper's 30)
}

// CollectDataset measures every loop in the corpus at every unroll factor
// and returns the filtered training set (loops above the instrumentation
// floor whose unrolling choice measurably matters), exactly as the paper
// collected its 2,500 examples.
func CollectDataset(c *Corpus, opt CollectOptions) (*Dataset, error) {
	t := timerFor(opt)
	lb, err := core.CollectLabels(c, t, opt.Seed)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: lb.Dataset(t)}, nil
}

// timerFor builds the measurement timer a CollectOptions describes.
func timerFor(opt CollectOptions) *sim.Timer {
	cfg := sim.DefaultConfig()
	if opt.Machine != nil {
		cfg.Mach = opt.Machine
	}
	cfg.SWP = opt.SWP
	if opt.Runs > 0 {
		cfg.Runs = opt.Runs
	}
	return sim.NewTimer(cfg)
}

// SelectFeatures runs the paper's Section 7 pipeline (mutual information
// plus greedy selection under both classifiers) and returns the union
// feature set used for classification.
func SelectFeatures(d *Dataset, seed int64) ([]int, error) {
	opt := core.DefaultSelectOptions()
	opt.Seed = seed
	fs, err := core.SelectFeatures(d.d, opt)
	if err != nil {
		return nil, err
	}
	return fs.Union, nil
}

// TrainOptions configures Train.
type TrainOptions struct {
	Algorithm Algorithm // default NearNeighbor
	Machine   *Machine  // nil = Itanium 2
	Features  []int     // feature subset; nil = all 38
	Radius    float64   // NearNeighbor only; 0 = the paper's 0.3
	Gamma     float64   // LS-SVM regularization; 0 = default
	Seed      int64
}

// Predictor maps loops to unroll factors.
type Predictor struct {
	c           ml.Classifier
	mach        *Machine
	feats       []int
	version     int    // persist format version the predictor carries
	fingerprint string // content hash of the serialized model
}

// Train fits a predictor on a dataset.
func Train(d *Dataset, opt TrainOptions) (*Predictor, error) {
	m := opt.Machine
	if m == nil {
		m = Itanium2()
	}
	set := d.d
	if opt.Features != nil {
		set = set.Select(opt.Features)
	}
	tr, err := trainerFor(opt)
	if err != nil {
		return nil, err
	}
	c, err := tr.Train(set)
	if err != nil {
		return nil, err
	}
	p := &Predictor{c: c, mach: m, feats: opt.Features, version: PersistVersion}
	if fp, err := p.computeFingerprint(); err == nil {
		p.fingerprint = fp
	}
	return p, nil
}

// TrainDefault trains the paper's best configuration: an LS-SVM on the
// selected feature union.
func TrainDefault(d *Dataset) (*Predictor, error) {
	feats, err := SelectFeatures(d, 1)
	if err != nil {
		return nil, err
	}
	return Train(d, TrainOptions{Algorithm: LSSVM, Features: feats})
}

// ErrNilLoop is returned by the predicting methods for a nil loop.
var ErrNilLoop = errors.New("unroll: nil loop")

// predictFallbacks counts legacy Predict calls that hit the error path and
// fell back to factor 1.
var predictFallbacks = obs.C("unroll.predict.fallback")

// nonFiniteRejects counts feature vectors refused at the PredictFeatures
// boundary because they carried NaN or ±Inf — values that would silently
// poison every distance computation downstream.
var nonFiniteRejects = obs.C("unroll.predict.nonfinite")

// Version reports the persist-format version the predictor carries:
// PersistVersion for freshly trained predictors, the artifact's recorded
// version for loaded ones (0 for legacy unversioned blobs).
func (p *Predictor) Version() int { return p.version }

// Fingerprint is a stable content hash of the serialized model, machine,
// and feature subset — the predictor's identity for artifact tracking,
// cache keying, and serving. It survives a Save/LoadPredictor round trip.
func (p *Predictor) Fingerprint() string { return p.fingerprint }

// Algorithm reports the algorithm tag the predictor would be saved under
// ("" if the classifier is not serializable).
func (p *Predictor) Algorithm() Algorithm {
	alg, err := savedAlgorithm(p.c)
	if err != nil {
		return ""
	}
	return alg
}

// PredictCtx returns the chosen unroll factor for a loop. Unlike the
// legacy Predict it reports failures — a nil or structurally invalid loop,
// a predictor whose feature subset does not fit the extracted vector, or a
// done context — instead of silently falling back.
func (p *Predictor) PredictCtx(ctx context.Context, l *Loop) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	v, err := p.featuresOf(l)
	if err != nil {
		return 0, err
	}
	return p.predictVector(v), nil
}

// PredictBatch predicts the unroll factor of every loop in order. The
// context is checked between loops, so a deadline or cancellation aborts
// the remainder of a large batch promptly. Any failure aborts the whole
// batch; callers who need per-loop errors call PredictCtx per loop.
func (p *Predictor) PredictBatch(ctx context.Context, loops []*Loop) ([]int, error) {
	out := make([]int, len(loops))
	for i, l := range loops {
		u, err := p.PredictCtx(ctx, l)
		if err != nil {
			return nil, fmt.Errorf("unroll: batch loop %d of %d: %w", i, len(loops), err)
		}
		out[i] = u
	}
	return out, nil
}

// PredictFeatures predicts from a pre-extracted feature vector: either the
// full NumFeatures-element vector (projected onto the predictor's subset)
// or a vector already projected to the subset's length. Non-finite values
// (NaN, ±Inf) are rejected here, before they can flow into a classifier's
// distance or kernel computations and corrupt every comparison.
func (p *Predictor) PredictFeatures(v []float64) (int, error) {
	for i, f := range v {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			nonFiniteRejects.Inc()
			return 0, fmt.Errorf("unroll: feature %d is not finite (%v)", i, f)
		}
	}
	if p.feats != nil && len(v) == len(p.feats) {
		return p.predictVector(v), nil
	}
	if len(v) == NumFeatures {
		pv, err := p.projectChecked(v)
		if err != nil {
			return 0, err
		}
		return p.predictVector(pv), nil
	}
	want := fmt.Sprintf("%d", NumFeatures)
	if p.feats != nil {
		want = fmt.Sprintf("%d or %d", NumFeatures, len(p.feats))
	}
	return 0, fmt.Errorf("unroll: feature vector has %d elements, want %s", len(v), want)
}

// Predict returns the chosen unroll factor for a loop.
//
// This is the legacy error-free interface: on any failure PredictCtx would
// report (nil or invalid loop, corrupt feature subset) it falls back to
// factor 1 — the identity choice — and counts the event on the
// "unroll.predict.fallback" telemetry counter. New code should call
// PredictCtx and handle the error.
func (p *Predictor) Predict(l *Loop) int {
	u, err := p.PredictCtx(context.Background(), l)
	if err != nil {
		predictFallbacks.Inc()
		return 1
	}
	return u
}

// featuresOf validates a loop and extracts its (projected) feature vector.
func (p *Predictor) featuresOf(l *Loop) ([]float64, error) {
	if l == nil {
		return nil, ErrNilLoop
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("unroll: invalid loop %q: %w", l.Name, err)
	}
	return p.projectChecked(Features(l, p.mach))
}

// predictVector runs the classifier and clamps its answer to [1,MaxFactor].
func (p *Predictor) predictVector(v []float64) int {
	u := p.c.Predict(v)
	if u < 1 {
		u = 1
	}
	if u > MaxFactor {
		u = MaxFactor
	}
	return u
}

// Confidence reports the voting-neighborhood evidence behind a prediction
// (near-neighbor predictors only): how many training loops vote and how
// strongly they agree. The paper proposes exactly this signal for outlier
// detection. ok is false for non-NN predictors.
func (p *Predictor) Confidence(l *Loop) (neighbors int, agreement float64, ok bool) {
	c, isNN := p.c.(*nn.Classifier)
	if !isNN {
		return 0, 0, false
	}
	n, a := c.Confidence(p.project(Features(l, p.mach)))
	return n, a, true
}

// CrossValidate runs leave-one-out cross-validation of an algorithm on a
// dataset and returns the fraction of optimal predictions.
func CrossValidate(d *Dataset, opt TrainOptions) (accuracy float64, err error) {
	set := d.d
	if opt.Features != nil {
		set = set.Select(opt.Features)
	}
	tr, err := trainerFor(opt)
	if err != nil {
		return 0, err
	}
	preds, err := ml.LOOCV(tr, set)
	if err != nil {
		return 0, err
	}
	return ml.Accuracy(set, preds), nil
}

// jsonExample is the serialized form of one training example — the "raw
// loop data" release format.
type jsonExample struct {
	Name      string    `json:"name"`
	Benchmark string    `json:"benchmark"`
	Features  []float64 `json:"features"`
	Label     int       `json:"label"`
	Cycles    []int64   `json:"cycles"`
}

type jsonDataset struct {
	FeatureNames []string      `json:"feature_names"`
	Examples     []jsonExample `json:"examples"`
}

// Save writes the dataset as JSON, streaming one example at a time through
// a buffered writer: peak memory is one encoded example, not the whole
// corpus, so saving a 100× dataset costs the same RSS as a 1× one. The
// layout is deterministic and LoadDataset-compatible.
func (d *Dataset) Save(w io.Writer) error {
	if d.d.Len() > 0 && !d.d.HasRows() {
		return fmt.Errorf("unroll: JSON save needs materialized feature rows; column-only datasets persist via SaveColumnar")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	names, err := json.Marshal(d.d.FeatureNames)
	if err != nil {
		return err
	}
	// bufio retains the first underlying write error and reports it from
	// Flush, so only the per-example encodes need individual checks.
	bw.WriteString("{\n \"feature_names\": ")
	bw.Write(names)
	bw.WriteString(",\n \"examples\": [")
	for i := range d.d.Examples {
		e := &d.d.Examples[i]
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n  ")
		b, err := json.Marshal(jsonExample{
			Name:      e.Name,
			Benchmark: e.Benchmark,
			Features:  e.Features,
			Label:     e.Label,
			Cycles:    e.Cycles[1:],
		})
		if err != nil {
			return err
		}
		bw.Write(b)
	}
	bw.WriteString("\n ]\n}\n")
	return bw.Flush()
}

// LoadDataset reads a dataset saved by Save.
func LoadDataset(r io.Reader) (*Dataset, error) {
	var in jsonDataset
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("unroll: load dataset: %w", err)
	}
	d := &ml.Dataset{FeatureNames: in.FeatureNames}
	for _, je := range in.Examples {
		e := ml.Example{
			Name:      je.Name,
			Benchmark: je.Benchmark,
			Features:  je.Features,
			Label:     je.Label,
		}
		copy(e.Cycles[1:], je.Cycles)
		d.Examples = append(d.Examples, e)
	}
	out := &Dataset{d: d}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("unroll: load dataset: %w", err)
	}
	return out, nil
}

// SaveColumnar writes the dataset to path in the binary columnar format
// (internal/colstore): per-feature column slabs behind a CRC-protected
// footer, written atomically chunk by chunk. Loading it back is a mmap plus
// a metadata scan — the fast path for 10×–100× corpora. config is free-form
// provenance recorded (and SHA-256 fingerprinted) in the file header.
func (d *Dataset) SaveColumnar(path, config string) error {
	return colstore.WriteDataset(path, d.d, config)
}

// LoadDatasetFile loads a dataset from path in whichever format it was
// saved: the binary columnar format is recognized by its magic bytes, and
// anything else is parsed as the JSON release format. Columnar loads are
// fully materialized (rows plus a column backing), so the dataset outlives
// the underlying file.
func LoadDatasetFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("unroll: load dataset: %w", err)
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err == nil && string(magic[:]) == "MOCS" {
		md, err := colstore.Load(path)
		if err != nil {
			return nil, fmt.Errorf("unroll: load dataset: %w", err)
		}
		if err := md.Validate(); err != nil {
			return nil, fmt.Errorf("unroll: load dataset: %w", err)
		}
		return &Dataset{d: md}, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("unroll: load dataset: %w", err)
	}
	return LoadDataset(f)
}

// OpenDatasetColumnar opens a columnar dataset out of core: feature values
// are served zero-copy from the mapped file and examples carry metadata
// only, so cross-validating a 100× corpus needs RSS proportional to the
// working set, not the corpus. The returned close function releases the
// mapping; the dataset (and any column views derived from it) must not be
// used afterwards. Training a serving predictor needs LoadDatasetFile
// instead.
func OpenDatasetColumnar(path string) (*Dataset, func() error, error) {
	r, err := colstore.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("unroll: open dataset: %w", err)
	}
	md := r.Dataset()
	if err := md.Validate(); err != nil {
		r.Close()
		return nil, nil, fmt.Errorf("unroll: open dataset: %w", err)
	}
	return &Dataset{d: md}, r.Close, nil
}

// SaveCSV writes the dataset as CSV: one row per loop with its benchmark,
// every feature, the measured cycles at each factor, and the label. This is
// the flat "raw loop data" format for external analysis tools.
func (d *Dataset) SaveCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "loop"}
	header = append(header, d.d.FeatureNames...)
	for u := 1; u <= ml.NumClasses; u++ {
		header = append(header, fmt.Sprintf("cycles_u%d", u))
	}
	header = append(header, "label")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for _, e := range d.d.Examples {
		row = row[:0]
		row = append(row, e.Benchmark, e.Name)
		for _, f := range e.Features {
			row = append(row, strconv.FormatFloat(f, 'g', -1, 64))
		}
		for u := 1; u <= ml.NumClasses; u++ {
			row = append(row, strconv.FormatInt(e.Cycles[u], 10))
		}
		row = append(row, strconv.Itoa(e.Label))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Evaluation is a Table-2-style report for one algorithm on one dataset:
// where its leave-one-out predictions rank in the measured ordering, the
// misprediction cost, and the full confusion matrix.
type Evaluation struct {
	Algorithm Algorithm
	Examples  int
	// RankFrac[r] is the fraction of predictions whose factor was the
	// (r+1)-th best measured choice; RankFrac[0] is the optimal fraction.
	RankFrac [8]float64
	// CostByRank[r] is the mean runtime penalty of a rank-(r+1) choice.
	CostByRank [8]float64
	Confusion  *ml.Confusion
}

// Accuracy is the optimal-prediction fraction.
func (e *Evaluation) Accuracy() float64 { return e.RankFrac[0] }

// Evaluate cross-validates an algorithm on the dataset (leave-one-out) and
// assembles the evaluation report.
func Evaluate(d *Dataset, opt TrainOptions) (*Evaluation, error) {
	set := d.d
	if opt.Features != nil {
		set = set.Select(opt.Features)
	}
	tr, err := trainerFor(opt)
	if err != nil {
		return nil, err
	}
	preds, err := ml.LOOCV(tr, set)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{Algorithm: opt.Algorithm, Examples: set.Len()}
	ev.RankFrac, _ = ml.RankTable(set, preds)
	ev.CostByRank = ml.CostByRank(set)
	ev.Confusion = ml.NewConfusion(set, preds)
	return ev, nil
}

// Render formats the report for terminal output.
func (e *Evaluation) Render() string {
	var sb strings.Builder
	alg := e.Algorithm
	if alg == "" {
		alg = NearNeighbor
	}
	fmt.Fprintf(&sb, "evaluation of %s on %d loops (leave-one-out)\n", alg, e.Examples)
	fmt.Fprintf(&sb, "%-14s %8s %8s\n", "rank", "fraction", "cost")
	for r := 0; r < len(e.RankFrac); r++ {
		fmt.Fprintf(&sb, "%-14s %8.2f %7.2fx\n", rankName(r), e.RankFrac[r], e.CostByRank[r])
	}
	sb.WriteString(e.Confusion.String())
	return sb.String()
}

func rankName(r int) string {
	names := [...]string{"optimal", "second-best", "third-best", "fourth-best",
		"fifth-best", "sixth-best", "seventh-best", "worst"}
	if r >= 0 && r < len(names) {
		return names[r]
	}
	return fmt.Sprintf("rank-%d", r+1)
}
