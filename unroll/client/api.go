// Package client is the Go client for the unrolld prediction service and
// the home of its wire types. The server (internal/serve) and this client
// marshal the same structs, so the two cannot drift.
package client

import "time"

// PredictRequest asks for the unroll factor of one loop: either LoopLang
// source containing exactly one kernel, or a pre-extracted feature vector
// (the full 38-element vector or one already projected onto the served
// model's feature subset). Exactly one of the two must be set.
type PredictRequest struct {
	Source   string    `json:"source,omitempty"`
	Features []float64 `json:"features,omitempty"`
}

// PredictResponse is the answer to POST /v1/predict.
type PredictResponse struct {
	Factor int    `json:"factor"`
	Loop   string `json:"loop,omitempty"` // kernel name, for source requests
	Cached bool   `json:"cached,omitempty"`
	// Model identity the prediction came from, so build farms can tie
	// compile-time decisions to a model artifact.
	ModelVersion int    `json:"model_version"`
	Fingerprint  string `json:"fingerprint"`
}

// PredictV2Request is the body of POST /v2/predict: a v1 request plus the
// multi-model routing fields. Model pins a registry version by fingerprint
// or alias (empty means the promoted default); Tenant labels the request
// for per-tenant accounting and SLO slices.
type PredictV2Request struct {
	PredictRequest
	Model  string `json:"model,omitempty"`
	Tenant string `json:"tenant,omitempty"`
}

// BatchRequest is the body of POST /v1/predict/batch.
type BatchRequest struct {
	Loops []PredictRequest `json:"loops"`
}

// BatchV2Request is the body of POST /v2/predict/batch; Model and Tenant
// apply to every loop in the batch.
type BatchV2Request struct {
	Loops  []PredictRequest `json:"loops"`
	Model  string           `json:"model,omitempty"`
	Tenant string           `json:"tenant,omitempty"`
}

// BatchResult is one loop's outcome inside a batch response. Factor is
// meaningful only when Error is empty.
type BatchResult struct {
	Factor int    `json:"factor,omitempty"`
	Loop   string `json:"loop,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// BatchResponse answers a batch request, index-aligned with the request.
type BatchResponse struct {
	Results      []BatchResult `json:"results"`
	ModelVersion int           `json:"model_version"`
	Fingerprint  string        `json:"fingerprint"`
}

// ReloadRequest is the body of POST /v1/admin/reload. An empty path
// reloads the artifact the server was started with.
type ReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// ModelInfo is the common envelope every admin surface answers with: the
// identity of one model version. GET /v1/model returns the promoted
// default; Reload, Shadow, and the registry endpoints embed or return the
// version they acted on.
type ModelInfo struct {
	Algorithm    string `json:"algorithm,omitempty"`
	ModelVersion int    `json:"model_version"`
	Fingerprint  string `json:"fingerprint"`
	Path         string `json:"path,omitempty"`
	// Compiled is the versioned fingerprint of the compiled lowering
	// answering queries, empty when the interpreted model serves.
	Compiled string    `json:"compiled,omitempty"`
	LoadedAt time.Time `json:"loaded_at"`
	// Registry placement: Default marks the promoted version, Pinned a
	// version protected from LRU eviction, Aliases its bound names.
	Default bool     `json:"default,omitempty"`
	Pinned  bool     `json:"pinned,omitempty"`
	Aliases []string `json:"aliases,omitempty"`
}

// ReloadResponse reports the model swap: the ModelInfo of the newly
// promoted version plus the fingerprint it displaced.
type ReloadResponse struct {
	ModelInfo
	Previous string `json:"previous"`
}

// ShadowRequest is the body of POST /v1/admin/shadow: load the artifact
// at Path as the shadow candidate and mirror Fraction (0,1] of predict
// traffic to it. Fraction 0 disables shadowing.
type ShadowRequest struct {
	Path     string  `json:"path,omitempty"`
	Fraction float64 `json:"fraction"`
}

// ShadowResponse reports the shadow candidate that was loaded (or that
// shadowing was disabled), as the common ModelInfo envelope plus the
// mirroring state.
type ShadowResponse struct {
	Enabled  bool    `json:"enabled"`
	Fraction float64 `json:"fraction,omitempty"`
	ModelInfo
}

// ShadowConfusionCell is one nonzero cell of the decision confusion
// matrix: Count mirrored requests where the live model answered Primary
// and the shadow answered Shadow.
type ShadowConfusionCell struct {
	Primary int   `json:"primary"`
	Shadow  int   `json:"shadow"`
	Count   int64 `json:"count"`
}

// ShadowReport answers GET /v1/shadow/report: the accumulated agreement
// between the live model and the shadow candidate. Sampled counts the
// requests eligible for mirroring; Mirrored the ones actually scored;
// Dropped the ones shed because the mirror queue was full. Latency means
// are measured back-to-back on the same inputs off the serving path, so
// MeanDeltaUS isolates the model cost difference.
type ShadowReport struct {
	Enabled      bool      `json:"enabled"`
	Path         string    `json:"path,omitempty"`
	Fingerprint  string    `json:"fingerprint,omitempty"`
	ModelVersion int       `json:"model_version,omitempty"`
	Fraction     float64   `json:"fraction,omitempty"`
	StartedAt    time.Time `json:"started_at,omitempty"`

	Sampled  int64 `json:"sampled"`
	Mirrored int64 `json:"mirrored"`
	Agree    int64 `json:"agree"`
	Disagree int64 `json:"disagree"`
	Errors   int64 `json:"errors"`
	Dropped  int64 `json:"dropped"`

	AgreementRate float64 `json:"agreement_rate"`
	MeanPrimaryUS float64 `json:"mean_primary_us"`
	MeanShadowUS  float64 `json:"mean_shadow_us"`
	MeanDeltaUS   float64 `json:"mean_delta_us"`

	Confusion []ShadowConfusionCell `json:"confusion,omitempty"`
}

// ModelLoadRequest is the body of POST /v1/admin/models/load: stage the
// artifact at Path in the registry without promoting it. Alias optionally
// binds a stable name ("canary", "tenant-a") to the version; Pin protects
// it from LRU eviction.
type ModelLoadRequest struct {
	Path  string `json:"path"`
	Alias string `json:"alias,omitempty"`
	Pin   bool   `json:"pin,omitempty"`
}

// ModelRefRequest names one registry version by fingerprint (or unique
// prefix) or alias; the body of promote and evict.
type ModelRefRequest struct {
	Model string `json:"model"`
}

// ModelsResponse answers GET /v1/admin/models: every resident version,
// default first.
type ModelsResponse struct {
	Default string      `json:"default,omitempty"`
	Models  []ModelInfo `json:"models"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
