// Package client is the Go client for the unrolld prediction service and
// the home of its wire types. The server (internal/serve) and this client
// marshal the same structs, so the two cannot drift.
package client

import "time"

// PredictRequest asks for the unroll factor of one loop: either LoopLang
// source containing exactly one kernel, or a pre-extracted feature vector
// (the full 38-element vector or one already projected onto the served
// model's feature subset). Exactly one of the two must be set.
type PredictRequest struct {
	Source   string    `json:"source,omitempty"`
	Features []float64 `json:"features,omitempty"`
}

// PredictResponse is the answer to POST /v1/predict.
type PredictResponse struct {
	Factor int    `json:"factor"`
	Loop   string `json:"loop,omitempty"` // kernel name, for source requests
	Cached bool   `json:"cached,omitempty"`
	// Model identity the prediction came from, so build farms can tie
	// compile-time decisions to a model artifact.
	ModelVersion int    `json:"model_version"`
	Fingerprint  string `json:"fingerprint"`
}

// BatchRequest is the body of POST /v1/predict/batch.
type BatchRequest struct {
	Loops []PredictRequest `json:"loops"`
}

// BatchResult is one loop's outcome inside a batch response. Factor is
// meaningful only when Error is empty.
type BatchResult struct {
	Factor int    `json:"factor,omitempty"`
	Loop   string `json:"loop,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// BatchResponse answers a batch request, index-aligned with the request.
type BatchResponse struct {
	Results      []BatchResult `json:"results"`
	ModelVersion int           `json:"model_version"`
	Fingerprint  string        `json:"fingerprint"`
}

// ReloadRequest is the body of POST /v1/admin/reload. An empty path
// reloads the artifact the server was started with.
type ReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// ReloadResponse reports the model swap. Compiled is the versioned
// fingerprint of the serve-optimized lowering of the new model, empty if
// the server fell back to interpreted prediction.
type ReloadResponse struct {
	Fingerprint  string `json:"fingerprint"`
	Previous     string `json:"previous"`
	ModelVersion int    `json:"model_version"`
	Compiled     string `json:"compiled,omitempty"`
}

// ModelInfo answers GET /v1/model: the identity of the currently served
// artifact.
type ModelInfo struct {
	Algorithm    string `json:"algorithm,omitempty"`
	ModelVersion int    `json:"model_version"`
	Fingerprint  string `json:"fingerprint"`
	Path         string `json:"path,omitempty"`
	// Compiled is the versioned fingerprint of the compiled lowering
	// answering queries, empty when the interpreted model serves.
	Compiled string `json:"compiled,omitempty"`
}

// ShadowRequest is the body of POST /v1/admin/shadow: load the artifact
// at Path as the shadow candidate and mirror Fraction (0,1] of predict
// traffic to it. Fraction 0 disables shadowing.
type ShadowRequest struct {
	Path     string  `json:"path,omitempty"`
	Fraction float64 `json:"fraction"`
}

// ShadowResponse reports the shadow candidate that was loaded (or that
// shadowing was disabled). Compiled carries the candidate's compiled
// fingerprint, empty when it shadows interpreted.
type ShadowResponse struct {
	Enabled      bool    `json:"enabled"`
	Fingerprint  string  `json:"fingerprint,omitempty"`
	ModelVersion int     `json:"model_version,omitempty"`
	Fraction     float64 `json:"fraction,omitempty"`
	Compiled     string  `json:"compiled,omitempty"`
}

// ShadowConfusionCell is one nonzero cell of the decision confusion
// matrix: Count mirrored requests where the live model answered Primary
// and the shadow answered Shadow.
type ShadowConfusionCell struct {
	Primary int   `json:"primary"`
	Shadow  int   `json:"shadow"`
	Count   int64 `json:"count"`
}

// ShadowReport answers GET /v1/shadow/report: the accumulated agreement
// between the live model and the shadow candidate. Sampled counts the
// requests eligible for mirroring; Mirrored the ones actually scored;
// Dropped the ones shed because the mirror queue was full. Latency means
// are measured back-to-back on the same inputs off the serving path, so
// MeanDeltaUS isolates the model cost difference.
type ShadowReport struct {
	Enabled      bool      `json:"enabled"`
	Path         string    `json:"path,omitempty"`
	Fingerprint  string    `json:"fingerprint,omitempty"`
	ModelVersion int       `json:"model_version,omitempty"`
	Fraction     float64   `json:"fraction,omitempty"`
	StartedAt    time.Time `json:"started_at,omitempty"`

	Sampled  int64 `json:"sampled"`
	Mirrored int64 `json:"mirrored"`
	Agree    int64 `json:"agree"`
	Disagree int64 `json:"disagree"`
	Errors   int64 `json:"errors"`
	Dropped  int64 `json:"dropped"`

	AgreementRate float64 `json:"agreement_rate"`
	MeanPrimaryUS float64 `json:"mean_primary_us"`
	MeanShadowUS  float64 `json:"mean_shadow_us"`
	MeanDeltaUS   float64 `json:"mean_delta_us"`

	Confusion []ShadowConfusionCell `json:"confusion,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
