// Package client is the Go client for the unrolld prediction service and
// the home of its wire types. The server (internal/serve) and this client
// marshal the same structs, so the two cannot drift.
package client

// PredictRequest asks for the unroll factor of one loop: either LoopLang
// source containing exactly one kernel, or a pre-extracted feature vector
// (the full 38-element vector or one already projected onto the served
// model's feature subset). Exactly one of the two must be set.
type PredictRequest struct {
	Source   string    `json:"source,omitempty"`
	Features []float64 `json:"features,omitempty"`
}

// PredictResponse is the answer to POST /v1/predict.
type PredictResponse struct {
	Factor int    `json:"factor"`
	Loop   string `json:"loop,omitempty"` // kernel name, for source requests
	Cached bool   `json:"cached,omitempty"`
	// Model identity the prediction came from, so build farms can tie
	// compile-time decisions to a model artifact.
	ModelVersion int    `json:"model_version"`
	Fingerprint  string `json:"fingerprint"`
}

// BatchRequest is the body of POST /v1/predict/batch.
type BatchRequest struct {
	Loops []PredictRequest `json:"loops"`
}

// BatchResult is one loop's outcome inside a batch response. Factor is
// meaningful only when Error is empty.
type BatchResult struct {
	Factor int    `json:"factor,omitempty"`
	Loop   string `json:"loop,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// BatchResponse answers a batch request, index-aligned with the request.
type BatchResponse struct {
	Results      []BatchResult `json:"results"`
	ModelVersion int           `json:"model_version"`
	Fingerprint  string        `json:"fingerprint"`
}

// ReloadRequest is the body of POST /v1/admin/reload. An empty path
// reloads the artifact the server was started with.
type ReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// ReloadResponse reports the model swap. Compiled is the versioned
// fingerprint of the serve-optimized lowering of the new model, empty if
// the server fell back to interpreted prediction.
type ReloadResponse struct {
	Fingerprint  string `json:"fingerprint"`
	Previous     string `json:"previous"`
	ModelVersion int    `json:"model_version"`
	Compiled     string `json:"compiled,omitempty"`
}

// ModelInfo answers GET /v1/model: the identity of the currently served
// artifact.
type ModelInfo struct {
	Algorithm    string `json:"algorithm,omitempty"`
	ModelVersion int    `json:"model_version"`
	Fingerprint  string `json:"fingerprint"`
	Path         string `json:"path,omitempty"`
	// Compiled is the versioned fingerprint of the compiled lowering
	// answering queries, empty when the interpreted model serves.
	Compiled string `json:"compiled,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
