package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"metaopt/internal/faults"
	"metaopt/internal/obs"
)

// epMetrics is one endpoint's client-side telemetry: attempts, failed
// attempts, and per-attempt latency. Resolved once at init so the request
// path never hits the registry maps.
type epMetrics struct {
	reqs *obs.Counter
	errs *obs.Counter
	lat  *obs.Histogram
}

func newEPMetrics(name string) *epMetrics {
	return &epMetrics{
		reqs: obs.C("client." + name + ".requests"),
		errs: obs.C("client." + name + ".errors"),
		lat:  obs.H("client."+name+".latency_us", obs.ExpBounds(50, 2, 16)),
	}
}

// epByPath maps request paths to their metric set; unknown paths fall
// into the "other" bucket rather than minting unbounded metric names.
var epByPath = map[string]*epMetrics{
	"/v1/predict":       newEPMetrics("predict"),
	"/v1/predict/batch": newEPMetrics("batch"),
	"/v1/admin/reload":  newEPMetrics("reload"),
	"/v1/admin/shadow":  newEPMetrics("shadow"),
	"/v1/shadow/report": newEPMetrics("shadow_report"),
	"/v1/model":         newEPMetrics("model"),
	"/healthz":          newEPMetrics("healthz"),
	"/readyz":           newEPMetrics("readyz"),
}

var epOther = newEPMetrics("other")

func endpointMetrics(path string) *epMetrics {
	if m, ok := epByPath[path]; ok {
		return m
	}
	return epOther
}

// Client-side request IDs: one per logical call, reused verbatim across
// retry attempts so the server's logs and trace ring show every attempt
// of a call under the same ID.
var (
	clientIDPrefix = fmt.Sprintf("c%07x", time.Now().UnixNano()&0xfffffff)
	clientIDSeq    atomic.Int64
)

func nextClientRequestID() string {
	return fmt.Sprintf("%s-%06d", clientIDPrefix, clientIDSeq.Add(1))
}

// APIError is a non-2xx answer from the service. For 503s RetryAfter
// carries the server's backoff hint, clamped to MaxRetryAfter.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("unrolld: %s (HTTP %d)", e.Message, e.Status)
}

// IsOverloaded reports whether an error is the service shedding load
// (backpressure or drain); callers should back off and retry. It sees
// through retry-loop wrapping.
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable
}

// Client talks to one unrolld server. Options arm per-client resilience:
// WithRetry for backoff on idempotent requests, WithBreaker to fail fast
// while the server is down. A Client is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retry   *retrier
	breaker *breaker
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (pooling,
// timeouts, instrumentation).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the server at base, e.g. "http://127.0.0.1:8080".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Predict asks for one loop's unroll factor. Predictions are pure reads of
// the served model, so an armed RetryPolicy applies.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (*PredictResponse, error) {
	var out PredictResponse
	if err := c.post(ctx, "/v1/predict", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// PredictSource is Predict for a LoopLang kernel source.
func (c *Client) PredictSource(ctx context.Context, src string) (int, error) {
	resp, err := c.Predict(ctx, PredictRequest{Source: src})
	if err != nil {
		return 0, err
	}
	return resp.Factor, nil
}

// PredictBatch asks for many loops in one round trip. The response is
// index-aligned with reqs; per-loop failures come back in
// BatchResult.Error rather than failing the call.
func (c *Client) PredictBatch(ctx context.Context, reqs []PredictRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.post(ctx, "/v1/predict/batch", BatchRequest{Loops: reqs}, &out, true); err != nil {
		return nil, err
	}
	if len(out.Results) != len(reqs) {
		return nil, fmt.Errorf("unrolld: batch returned %d results for %d loops", len(out.Results), len(reqs))
	}
	return &out, nil
}

// Reload asks the server to swap in the artifact at path (or re-read its
// startup artifact when path is empty). Reload mutates server state, so it
// is never retried — a timed-out reload may have landed.
func (c *Client) Reload(ctx context.Context, path string) (*ReloadResponse, error) {
	var out ReloadResponse
	if err := c.post(ctx, "/v1/admin/reload", ReloadRequest{Path: path}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Model fetches the identity of the currently served artifact.
func (c *Client) Model(ctx context.Context) (*ModelInfo, error) {
	var out ModelInfo
	if err := c.get(ctx, "/v1/model", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Shadow asks the server to load the artifact at path as a shadow
// candidate mirroring fraction (0,1] of predict traffic; fraction 0
// disables shadowing. Shadow mutates server state, so it is never
// retried.
func (c *Client) Shadow(ctx context.Context, path string, fraction float64) (*ShadowResponse, error) {
	var out ShadowResponse
	if err := c.post(ctx, "/v1/admin/shadow", ShadowRequest{Path: path, Fraction: fraction}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShadowReport fetches the accumulated live-vs-shadow decision
// comparison.
func (c *Client) ShadowReport(ctx context.Context) (*ShadowReport, error) {
	var out ShadowReport
	if err := c.get(ctx, "/v1/shadow/report", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reports liveness.
func (c *Client) Healthz(ctx context.Context) error { return c.get(ctx, "/healthz", nil) }

// Readyz reports readiness (model loaded, not draining, not panic-latched).
func (c *Client) Readyz(ctx context.Context) error { return c.get(ctx, "/readyz", nil) }

func (c *Client) post(ctx context.Context, path string, in, out any, idempotent bool) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.roundTrip(ctx, http.MethodPost, path, body, out, idempotent)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.roundTrip(ctx, http.MethodGet, path, nil, out, true)
}

// roundTrip is the resilient request loop: breaker gate, one attempt, and
// — for idempotent requests under an armed RetryPolicy — backoff-with-
// jitter retries honoring the server's (clamped) Retry-After hints.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte, out any, idempotent bool) error {
	attempts := 1
	if idempotent && c.retry != nil {
		attempts = c.retry.policy.MaxAttempts
	}
	// One ID per logical call: every retry attempt carries the same
	// X-Request-Id, so server-side logs and traces group the attempts.
	reqID := nextClientRequestID()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			mRetries.Inc()
			if err := c.retry.sleep(ctx, attempt-1, retryAfterOf(lastErr)); err != nil {
				mRetryGiveUps.Inc()
				return fmt.Errorf("%w (gave up retrying: %v)", lastErr, err)
			}
		}
		if c.breaker != nil {
			if err := c.breaker.allow(); err != nil {
				return err
			}
		}
		err := c.doOnce(ctx, method, path, body, out, reqID)
		if c.breaker != nil {
			c.breaker.record(err != nil && serverFault(err))
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
	}
	if attempts > 1 {
		mRetryGiveUps.Inc()
	}
	return lastErr
}

// doOnce performs a single HTTP exchange, feeding the endpoint's
// client-side counters and latency histogram.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any, reqID string) (err error) {
	ep := endpointMetrics(path)
	ep.reqs.Inc()
	start := time.Now()
	defer func() {
		ep.lat.Observe(time.Since(start).Microseconds())
		if err != nil {
			ep.errs.Inc()
		}
	}()
	if err := faults.Check("client.request"); err != nil {
		return err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("X-Request-Id", reqID)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	// Always drain before close so the keep-alive connection goes back to
	// the pool instead of being torn down — under retry load, reconnect
	// churn is exactly the failure amplifier we are trying to avoid.
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &APIError{Status: resp.StatusCode}
		var body ErrorResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
			ae.Message = body.Error
		} else {
			ae.Message = http.StatusText(resp.StatusCode)
		}
		ae.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		return ae
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// parseRetryAfter reads a Retry-After value in seconds, clamped to
// [0, MaxRetryAfter]. Unparseable or negative values — and absurd ones
// from a confused server — never steer the client's backoff.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > MaxRetryAfter {
		return MaxRetryAfter
	}
	return d
}
