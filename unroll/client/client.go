package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"metaopt/internal/faults"
	"metaopt/internal/obs"
)

// epMetrics is one route's client-side telemetry: attempts, failed
// attempts, and per-attempt latency. Resolved once at init so the request
// path never hits the registry maps.
type epMetrics struct {
	reqs *obs.Counter
	errs *obs.Counter
	lat  *obs.Histogram
}

func newEPMetrics(name string) *epMetrics {
	return &epMetrics{
		reqs: obs.C("client." + name + ".requests"),
		errs: obs.C("client." + name + ".errors"),
		lat:  obs.H("client."+name+".latency_us", obs.ExpBounds(50, 2, 16)),
	}
}

// epByPath maps request paths to their metric set; unknown paths fall
// into the "other" bucket rather than minting unbounded metric names.
var epByPath = map[string]*epMetrics{
	"/v1/predict":              newEPMetrics("predict"),
	"/v1/predict/batch":        newEPMetrics("batch"),
	"/v2/predict":              newEPMetrics("predict_v2"),
	"/v2/predict/batch":        newEPMetrics("batch_v2"),
	"/v1/admin/reload":         newEPMetrics("reload"),
	"/v1/admin/shadow":         newEPMetrics("shadow"),
	"/v1/admin/models":         newEPMetrics("models"),
	"/v1/admin/models/load":    newEPMetrics("models_load"),
	"/v1/admin/models/promote": newEPMetrics("models_promote"),
	"/v1/admin/models/evict":   newEPMetrics("models_evict"),
	"/v1/shadow/report":        newEPMetrics("shadow_report"),
	"/v1/model":                newEPMetrics("model"),
	"/healthz":                 newEPMetrics("healthz"),
	"/readyz":                  newEPMetrics("readyz"),
}

var epOther = newEPMetrics("other")

func endpointMetrics(path string) *epMetrics {
	if m, ok := epByPath[path]; ok {
		return m
	}
	return epOther
}

// Client-side request IDs: one per logical call, reused verbatim across
// retry attempts so the server's logs and trace ring show every attempt
// of a call under the same ID.
var (
	clientIDPrefix = fmt.Sprintf("c%07x", time.Now().UnixNano()&0xfffffff)
	clientIDSeq    atomic.Int64
)

func nextClientRequestID() string {
	return fmt.Sprintf("%s-%06d", clientIDPrefix, clientIDSeq.Add(1))
}

// Client talks to a fleet of unrolld replicas. Requests are spread with
// power-of-two-choices over in-flight counts; idempotent requests fail
// over to a different replica on retryable errors, and each endpoint
// carries its own circuit breaker, retry budget, and Retry-After hold so
// one sick replica never poisons the others. A Client is safe for
// concurrent use.
type Client struct {
	hc    *http.Client
	eps   []*endpoint
	retry *retrier

	model  string // default v2 model pin
	tenant string // default v2 tenant label

	pmu  sync.Mutex
	prng *rand.Rand
}

// Endpoints returns the replica base URLs the client balances over, in
// configuration order.
func (c *Client) Endpoints() []string {
	out := make([]string, len(c.eps))
	for i, e := range c.eps {
		out[i] = e.base
	}
	return out
}

// Predict asks for one loop's unroll factor. Predictions are pure reads of
// the served model, so an armed RetryPolicy applies.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (*PredictResponse, error) {
	var out PredictResponse
	if err := c.post(ctx, "/v1/predict", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// PredictSource is Predict for a LoopLang kernel source.
func (c *Client) PredictSource(ctx context.Context, src string) (int, error) {
	resp, err := c.Predict(ctx, PredictRequest{Source: src})
	if err != nil {
		return 0, err
	}
	return resp.Factor, nil
}

// PredictBatch asks for many loops in one round trip. The response is
// index-aligned with reqs; per-loop failures come back in
// BatchResult.Error rather than failing the call.
func (c *Client) PredictBatch(ctx context.Context, reqs []PredictRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.post(ctx, "/v1/predict/batch", BatchRequest{Loops: reqs}, &out, true); err != nil {
		return nil, err
	}
	if len(out.Results) != len(reqs) {
		return nil, fmt.Errorf("unrolld: batch returned %d results for %d loops", len(out.Results), len(reqs))
	}
	return &out, nil
}

// PredictV2 is Predict on the v2 protocol: the request may pin a model
// version (fingerprint or alias) and carry a tenant label. Empty Model and
// Tenant fields inherit the client's configured defaults; the response
// always stamps the fingerprint of the version that answered.
func (c *Client) PredictV2(ctx context.Context, req PredictV2Request) (*PredictResponse, error) {
	if req.Model == "" {
		req.Model = c.model
	}
	if req.Tenant == "" {
		req.Tenant = c.tenant
	}
	var out PredictResponse
	if err := c.post(ctx, "/v2/predict", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// PredictBatchV2 is PredictBatch on the v2 protocol; Model and Tenant
// default like PredictV2's.
func (c *Client) PredictBatchV2(ctx context.Context, req BatchV2Request) (*BatchResponse, error) {
	if req.Model == "" {
		req.Model = c.model
	}
	if req.Tenant == "" {
		req.Tenant = c.tenant
	}
	var out BatchResponse
	if err := c.post(ctx, "/v2/predict/batch", req, &out, true); err != nil {
		return nil, err
	}
	if len(out.Results) != len(req.Loops) {
		return nil, fmt.Errorf("unrolld: batch returned %d results for %d loops", len(out.Results), len(req.Loops))
	}
	return &out, nil
}

// Reload asks the server to swap in the artifact at path (or re-read its
// startup artifact when path is empty). Reload mutates server state, so it
// is never retried — a timed-out reload may have landed.
func (c *Client) Reload(ctx context.Context, path string) (*ReloadResponse, error) {
	var out ReloadResponse
	if err := c.post(ctx, "/v1/admin/reload", ReloadRequest{Path: path}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Model fetches the identity of the currently served default artifact.
func (c *Client) Model(ctx context.Context) (*ModelInfo, error) {
	var out ModelInfo
	if err := c.get(ctx, "/v1/model", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Models lists every version resident in the server's model registry.
func (c *Client) Models(ctx context.Context) (*ModelsResponse, error) {
	var out ModelsResponse
	if err := c.get(ctx, "/v1/admin/models", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ModelLoad loads the artifact at req.Path into the registry without
// promoting it, optionally binding an alias and pinning it against LRU
// eviction. Mutates server state; never retried.
func (c *Client) ModelLoad(ctx context.Context, req ModelLoadRequest) (*ModelInfo, error) {
	var out ModelInfo
	if err := c.post(ctx, "/v1/admin/models/load", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// ModelPromote atomically makes the named version (fingerprint or alias)
// the default that unpinned requests are served by. Mutates server state;
// never retried.
func (c *Client) ModelPromote(ctx context.Context, model string) (*ModelInfo, error) {
	var out ModelInfo
	if err := c.post(ctx, "/v1/admin/models/promote", ModelRefRequest{Model: model}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// ModelEvict removes the named version from the registry. The default
// version cannot be evicted. Mutates server state; never retried.
func (c *Client) ModelEvict(ctx context.Context, model string) (*ModelInfo, error) {
	var out ModelInfo
	if err := c.post(ctx, "/v1/admin/models/evict", ModelRefRequest{Model: model}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Shadow asks the server to load the artifact at path as a shadow
// candidate mirroring fraction (0,1] of predict traffic; fraction 0
// disables shadowing. Shadow mutates server state, so it is never
// retried.
func (c *Client) Shadow(ctx context.Context, path string, fraction float64) (*ShadowResponse, error) {
	var out ShadowResponse
	if err := c.post(ctx, "/v1/admin/shadow", ShadowRequest{Path: path, Fraction: fraction}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShadowReport fetches the accumulated live-vs-shadow decision
// comparison.
func (c *Client) ShadowReport(ctx context.Context) (*ShadowReport, error) {
	var out ShadowReport
	if err := c.get(ctx, "/v1/shadow/report", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reports liveness.
func (c *Client) Healthz(ctx context.Context) error { return c.get(ctx, "/healthz", nil) }

// Readyz reports readiness (model loaded, not draining, not panic-latched).
func (c *Client) Readyz(ctx context.Context) error { return c.get(ctx, "/readyz", nil) }

func (c *Client) post(ctx context.Context, path string, in, out any, idempotent bool) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.roundTrip(ctx, http.MethodPost, path, body, out, idempotent)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.roundTrip(ctx, http.MethodGet, path, nil, out, true)
}

// roundTrip is the resilient request loop. Each attempt picks an endpoint
// (power-of-two-choices, avoiding the one that just failed). Failing over
// to a different replica retries immediately — the failed endpoint's
// Retry-After parks that endpoint alone, never its siblings; only when the
// same endpoint is retried does the backoff sleep (with the hint as floor)
// apply. Retries beyond the first attempt draw on the target endpoint's
// retry budget, and non-idempotent requests get exactly one attempt.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte, out any, idempotent bool) error {
	attempts := 1
	if idempotent {
		if c.retry != nil {
			attempts = c.retry.policy.MaxAttempts
		} else if len(c.eps) > 1 {
			// No retry policy armed: still give each replica one shot.
			attempts = len(c.eps)
		}
	}
	// One ID per logical call: every retry attempt carries the same
	// X-Request-Id, so server-side logs and traces group the attempts.
	reqID := nextClientRequestID()
	var lastErr error
	var lastEP *endpoint
	for attempt := 0; attempt < attempts; attempt++ {
		ep := c.pick(lastEP)
		if attempt > 0 {
			mRetries.Inc()
			if ep.budget != nil && !ep.budget.take() {
				mBudgetExhausted.Inc()
				return fmt.Errorf("%w (retry budget exhausted for %s)", lastErr, ep.base)
			}
			if ep == lastEP {
				if c.retry != nil {
					if err := c.retry.sleep(ctx, attempt-1, retryAfterOf(lastErr)); err != nil {
						mRetryGiveUps.Inc()
						return fmt.Errorf("%w (gave up retrying: %v)", lastErr, err)
					}
				}
			} else {
				mFailovers.Inc()
			}
		}
		if ep.breaker != nil {
			if err := ep.breaker.allow(); err != nil {
				if len(c.eps) == 1 {
					return err
				}
				lastErr, lastEP = err, ep
				continue
			}
		}
		err := c.doOnce(ctx, ep, method, path, body, out, reqID)
		if ep.breaker != nil {
			ep.breaker.record(err != nil && serverFault(err))
		}
		if err == nil {
			if ep.budget != nil {
				ep.budget.deposit()
			}
			return nil
		}
		lastErr, lastEP = err, ep
		if !retryable(err) {
			return err
		}
	}
	if attempts > 1 {
		mRetryGiveUps.Inc()
	}
	return lastErr
}

// doOnce performs a single HTTP exchange against one endpoint, feeding the
// route's client-side counters, the endpoint's health estimate, and its
// in-flight gauge (the balancing signal).
func (c *Client) doOnce(ctx context.Context, ep *endpoint, method, path string, body []byte, out any, reqID string) (err error) {
	pm := endpointMetrics(path)
	pm.reqs.Inc()
	ep.reqs.Inc()
	ep.inflight.Add(1)
	start := time.Now()
	defer func() {
		lat := time.Since(start).Microseconds()
		pm.lat.Observe(lat)
		ep.inflight.Add(-1)
		ep.observe(float64(lat), err != nil && serverFault(err))
		if err != nil {
			pm.errs.Inc()
			ep.errs.Inc()
		}
	}()
	if err := faults.Check("client.request"); err != nil {
		return err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, ep.base+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("X-Request-Id", reqID)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	// Always drain before close so the keep-alive connection goes back to
	// the pool instead of being torn down — under retry load, reconnect
	// churn is exactly the failure amplifier we are trying to avoid.
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &APIError{
			Status:    resp.StatusCode,
			Code:      codeForStatus(resp.StatusCode),
			Endpoint:  ep.base,
			RequestID: resp.Header.Get("X-Request-Id"),
		}
		if ae.RequestID == "" {
			ae.RequestID = reqID
		}
		var body ErrorResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
			ae.Message = body.Error
		} else {
			ae.Message = http.StatusText(resp.StatusCode)
		}
		ae.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		// The hint parks this endpoint alone; siblings stay eligible for
		// the immediate failover attempt.
		ep.hold(ae.RetryAfter, time.Now())
		return ae
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// parseRetryAfter reads a Retry-After value in seconds, clamped to
// [0, MaxRetryAfter]. Unparseable or negative values — and absurd ones
// from a confused server — never steer the client's backoff.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > MaxRetryAfter {
		return MaxRetryAfter
	}
	return d
}
