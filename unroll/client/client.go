package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// APIError is a non-2xx answer from the service. For 503s RetryAfter
// carries the server's backoff hint.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("unrolld: %s (HTTP %d)", e.Message, e.Status)
}

// IsOverloaded reports whether an error is the service shedding load
// (backpressure or drain); callers should back off and retry.
func IsOverloaded(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Status == http.StatusServiceUnavailable
}

// Client talks to one unrolld server.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (pooling,
// timeouts, instrumentation).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the server at base, e.g. "http://127.0.0.1:8080".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Predict asks for one loop's unroll factor.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (*PredictResponse, error) {
	var out PredictResponse
	if err := c.post(ctx, "/v1/predict", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PredictSource is Predict for a LoopLang kernel source.
func (c *Client) PredictSource(ctx context.Context, src string) (int, error) {
	resp, err := c.Predict(ctx, PredictRequest{Source: src})
	if err != nil {
		return 0, err
	}
	return resp.Factor, nil
}

// PredictBatch asks for many loops in one round trip. The response is
// index-aligned with reqs; per-loop failures come back in
// BatchResult.Error rather than failing the call.
func (c *Client) PredictBatch(ctx context.Context, reqs []PredictRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.post(ctx, "/v1/predict/batch", BatchRequest{Loops: reqs}, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(reqs) {
		return nil, fmt.Errorf("unrolld: batch returned %d results for %d loops", len(out.Results), len(reqs))
	}
	return &out, nil
}

// Reload asks the server to swap in the artifact at path (or re-read its
// startup artifact when path is empty).
func (c *Client) Reload(ctx context.Context, path string) (*ReloadResponse, error) {
	var out ReloadResponse
	if err := c.post(ctx, "/v1/admin/reload", ReloadRequest{Path: path}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Model fetches the identity of the currently served artifact.
func (c *Client) Model(ctx context.Context) (*ModelInfo, error) {
	var out ModelInfo
	if err := c.get(ctx, "/v1/model", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reports liveness.
func (c *Client) Healthz(ctx context.Context) error { return c.get(ctx, "/healthz", nil) }

// Readyz reports readiness (model loaded, not draining).
func (c *Client) Readyz(ctx context.Context) error { return c.get(ctx, "/readyz", nil) }

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &APIError{Status: resp.StatusCode}
		var body ErrorResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
			ae.Message = body.Error
		} else {
			ae.Message = http.StatusText(resp.StatusCode)
		}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
