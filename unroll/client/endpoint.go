package client

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"metaopt/internal/obs"
)

// endpoint is one replica of the fleet plus the client-side state that
// drives balancing and failover: the in-flight count (the power-of-two-
// choices signal), a circuit breaker, a retry budget, the Retry-After hold
// that parks the endpoint after a load-shed answer, and a health score
// blended from observed latency and errors.
type endpoint struct {
	base string
	idx  int

	inflight atomic.Int64
	breaker  *breaker     // nil: breaker not armed
	budget   *retryBudget // nil: retries bounded only by the policy

	// holdUntilNS parks this endpoint until the given wall-clock nanos:
	// its own Retry-After hint applies to it alone, never to siblings.
	holdUntilNS atomic.Int64

	reqs *obs.Counter // client.endpoint.<i>.requests
	errs *obs.Counter // client.endpoint.<i>.errors

	mu        sync.Mutex
	ewmaLatUS float64
	ewmaErr   float64
	samples   int64
}

func newEndpoint(base string, idx int, cfg *Config) *endpoint {
	ep := &endpoint{
		base: base,
		idx:  idx,
		reqs: obs.C(fmt.Sprintf("client.endpoint.%d.requests", idx)),
		errs: obs.C(fmt.Sprintf("client.endpoint.%d.errors", idx)),
	}
	if cfg.Breaker != nil {
		th, cd := cfg.Breaker.Threshold, cfg.Breaker.Cooldown
		if th <= 0 {
			th = 5
		}
		if cd <= 0 {
			cd = time.Second
		}
		ep.breaker = &breaker{threshold: th, cooldown: cd, now: time.Now}
	}
	if cfg.Budget != nil {
		ep.budget = newRetryBudget(*cfg.Budget)
	}
	return ep
}

// healthAlpha is the EWMA smoothing factor for the latency and error-rate
// estimates: recent observations dominate within ~5 samples.
const healthAlpha = 0.2

// observe feeds one attempt's outcome into the endpoint's health estimate.
// Only server faults (transport failures, 5xx) count as errors — a 4xx
// proves the replica is alive and fast.
func (e *endpoint) observe(latUS float64, failed bool) {
	f := 0.0
	if failed {
		f = 1.0
	}
	e.mu.Lock()
	if e.samples == 0 {
		e.ewmaLatUS, e.ewmaErr = latUS, f
	} else {
		e.ewmaLatUS += healthAlpha * (latUS - e.ewmaLatUS)
		e.ewmaErr += healthAlpha * (f - e.ewmaErr)
	}
	e.samples++
	e.mu.Unlock()
}

// score is the endpoint's badness — EWMA latency inflated by the error
// rate; lower is better. An endpoint that has never been tried scores 0,
// so fresh replicas win ties and get probed immediately.
func (e *endpoint) score() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ewmaLatUS * (1 + 9*e.ewmaErr)
}

// available reports whether the picker should consider this endpoint:
// not parked by its own Retry-After hold, and its breaker (if armed)
// would admit a request.
func (e *endpoint) available(now time.Time) bool {
	if e.holdUntilNS.Load() > now.UnixNano() {
		return false
	}
	return e.breaker == nil || e.breaker.canAttempt()
}

// hold parks the endpoint for d: after a 503/429 with a Retry-After hint
// the picker steers traffic to siblings until the hint expires. The hold
// only ever extends — concurrent shorter hints never un-park.
func (e *endpoint) hold(d time.Duration, now time.Time) {
	if d <= 0 {
		return
	}
	until := now.Add(d).UnixNano()
	for {
		cur := e.holdUntilNS.Load()
		if cur >= until || e.holdUntilNS.CompareAndSwap(cur, until) {
			return
		}
	}
}

// RetryBudget bounds retries to a fraction of successful request volume
// per endpoint (plus a small burst) — the standard defense against retry
// storms: when a replica browns out, each client may retry a little, not
// multiply the offered load. A retry withdraws one token; every successful
// request deposits Ratio tokens up to the Burst cap.
type RetryBudget struct {
	Ratio float64 // tokens earned per successful request (default 0.1)
	Burst int     // token cap and starting balance (default 10)
}

type retryBudget struct {
	ratio float64
	burst float64

	mu     sync.Mutex
	tokens float64
}

func newRetryBudget(p RetryBudget) *retryBudget {
	if p.Ratio <= 0 {
		p.Ratio = 0.1
	}
	if p.Burst <= 0 {
		p.Burst = 10
	}
	return &retryBudget{ratio: p.Ratio, burst: float64(p.Burst), tokens: float64(p.Burst)}
}

func (b *retryBudget) deposit() {
	b.mu.Lock()
	if b.tokens += b.ratio; b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

func (b *retryBudget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pick selects the endpoint for the next attempt: power-of-two-choices
// over in-flight counts among available endpoints (score breaks ties),
// avoiding the endpoint that just failed whenever an alternative exists.
// With every endpoint parked or broken it falls back to the full set and
// lets the breaker answer.
func (c *Client) pick(avoid *endpoint) *endpoint {
	if len(c.eps) == 1 {
		return c.eps[0]
	}
	now := time.Now()
	cand := make([]*endpoint, 0, len(c.eps))
	for _, e := range c.eps {
		if e != avoid && e.available(now) {
			cand = append(cand, e)
		}
	}
	if len(cand) == 0 {
		if avoid != nil && avoid.available(now) {
			return avoid
		}
		cand = c.eps
	}
	if len(cand) == 1 {
		return cand[0]
	}
	c.pmu.Lock()
	i := c.prng.Intn(len(cand))
	j := c.prng.Intn(len(cand) - 1)
	c.pmu.Unlock()
	if j >= i {
		j++
	}
	return better(cand[i], cand[j])
}

// better compares two endpoints: fewer in-flight requests wins; on a tie,
// the healthier score.
func better(a, b *endpoint) *endpoint {
	ai, bi := a.inflight.Load(), b.inflight.Load()
	if ai != bi {
		if ai < bi {
			return a
		}
		return b
	}
	if a.score() <= b.score() {
		return a
	}
	return b
}
