package client

import (
	"errors"
	"math/rand"
	"net/http"
	"strings"
	"time"
)

// Config describes a Client: the replica set it spreads load over and the
// resilience machinery armed on each endpoint. Build one directly or
// through the With* functional options; NewClient accepts both styles and
// they compose (options are applied on top of the struct).
type Config struct {
	// Endpoints are the replica base URLs, e.g. "http://10.0.0.1:8080".
	// At least one is required. Requests are balanced across them with
	// power-of-two-choices over in-flight counts; idempotent requests
	// fail over to a different replica on retryable errors.
	Endpoints []string

	// HTTPClient substitutes the underlying *http.Client (pooling,
	// timeouts, instrumentation). Default http.DefaultClient.
	HTTPClient *http.Client

	// Transport overrides the transport of the HTTP client actually used.
	// The HTTPClient is shallow-copied before the override, never mutated.
	Transport http.RoundTripper

	// Retry arms exponential-backoff retries (with failover across
	// endpoints) for idempotent requests. nil disables retries; multi-
	// endpoint clients still fail over once per remaining endpoint.
	Retry *RetryPolicy

	// Budget bounds retries per endpoint to a fraction of successful
	// request volume, so a browning-out fleet is not hammered with
	// multiplied load. nil leaves retries bounded only by Retry.
	Budget *RetryBudget

	// Breaker arms an independent circuit breaker per endpoint. nil
	// disables breaking.
	Breaker *BreakerPolicy

	// Model and Tenant are stamped onto every v2 request that does not
	// set its own: Model pins a registry version (fingerprint or alias),
	// Tenant labels traffic for per-tenant accounting.
	Model  string
	Tenant string
}

// BreakerPolicy configures the per-endpoint circuit breakers: after
// Threshold consecutive server faults an endpoint fails fast for Cooldown,
// then admits a single half-open probe whose outcome closes or reopens the
// circuit. Each endpoint trips independently — one dead replica never
// blinds the client to its healthy siblings.
type BreakerPolicy struct {
	Threshold int           // consecutive faults to open (default 5)
	Cooldown  time.Duration // open duration before the probe (default 1s)
}

// Option configures a Client's Config.
type Option func(*Config)

// WithEndpoints appends replica base URLs to the set the client balances
// over.
func WithEndpoints(urls ...string) Option {
	return func(c *Config) { c.Endpoints = append(c.Endpoints, urls...) }
}

// WithHTTPClient substitutes the underlying HTTP client.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Config) { c.HTTPClient = hc }
}

// WithTransport overrides the HTTP transport (the client is copied, the
// caller's http.Client is never mutated).
func WithTransport(rt http.RoundTripper) Option {
	return func(c *Config) { c.Transport = rt }
}

// WithRetry arms the retry loop for idempotent requests.
func WithRetry(p RetryPolicy) Option {
	return func(c *Config) { c.Retry = &p }
}

// WithRetryBudget bounds retries per endpoint to Ratio tokens per
// successful request with a Burst starting balance.
func WithRetryBudget(b RetryBudget) Option {
	return func(c *Config) { c.Budget = &b }
}

// WithBreaker arms a circuit breaker on every endpoint: after threshold
// consecutive failures an endpoint fails fast with ErrCircuitOpen for
// cooldown, then lets a single probe through (half-open); the probe's
// outcome closes or reopens its circuit.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Config) { c.Breaker = &BreakerPolicy{Threshold: threshold, Cooldown: cooldown} }
}

// WithModel sets the default model pin (fingerprint or alias) stamped on
// v2 requests.
func WithModel(model string) Option {
	return func(c *Config) { c.Model = model }
}

// WithTenant sets the default tenant label stamped on v2 requests.
func WithTenant(tenant string) Option {
	return func(c *Config) { c.Tenant = tenant }
}

// NewClient builds a client for a replica set. At least one endpoint is
// required; options are applied on top of cfg.
func NewClient(cfg Config, opts ...Option) (*Client, error) {
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("client: Config.Endpoints is empty; name at least one replica")
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	if cfg.Transport != nil {
		cp := *hc
		cp.Transport = cfg.Transport
		hc = &cp
	}
	c := &Client{hc: hc, model: cfg.Model, tenant: cfg.Tenant}
	seed := time.Now().UnixNano()
	if cfg.Retry != nil {
		p := cfg.Retry.withDefaults()
		c.retry = &retrier{policy: p, rng: rand.New(rand.NewSource(p.Seed))}
		seed = p.Seed + 1 // deterministic picker under a seeded policy
	}
	c.prng = rand.New(rand.NewSource(seed))
	for i, base := range cfg.Endpoints {
		c.eps = append(c.eps, newEndpoint(strings.TrimRight(base, "/"), i, &cfg))
	}
	return c, nil
}

// New returns a client for the single server at base, e.g.
// "http://127.0.0.1:8080".
//
// Deprecated: Use NewClient with Config.Endpoints (or WithEndpoints),
// which this shim wraps; New cannot express a replica set.
func New(base string, opts ...Option) *Client {
	c, err := NewClient(Config{Endpoints: []string{base}}, opts...)
	if err != nil {
		// Unreachable: exactly one endpoint is always supplied above.
		panic(err)
	}
	return c
}
