package client

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer answers 503 (with a Retry-After hint) for the first fail
// requests to /v1/predict, then succeeds.
func flakyServer(t *testing.T, fail int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/predict":
			if calls.Add(1) <= int64(fail) {
				if retryAfter != "" {
					w.Header().Set("Retry-After", retryAfter)
				}
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(ErrorResponse{Error: "queue full"})
				return
			}
			json.NewEncoder(w).Encode(PredictResponse{Factor: 4})
		case "/v1/admin/reload":
			calls.Add(1)
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "no"})
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// fastRetry keeps test wall-clock tiny and jitter deterministic.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 42}
}

func TestRetrySucceedsAfterBackoff(t *testing.T) {
	srv, calls := flakyServer(t, 2, "0")
	c := New(srv.URL, WithRetry(fastRetry(4)))
	retriesBefore := mRetries.Value()
	resp, err := c.Predict(context.Background(), PredictRequest{Source: "k"})
	if err != nil {
		t.Fatalf("predict with retries: %v", err)
	}
	if resp.Factor != 4 {
		t.Errorf("factor = %d", resp.Factor)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", got)
	}
	if mRetries.Value()-retriesBefore != 2 {
		t.Errorf("client.retries moved %d, want 2", mRetries.Value()-retriesBefore)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	srv, calls := flakyServer(t, 100, "0")
	c := New(srv.URL, WithRetry(fastRetry(3)))
	_, err := c.Predict(context.Background(), PredictRequest{Source: "k"})
	if !IsOverloaded(err) {
		t.Fatalf("want final 503 after budget, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want exactly MaxAttempts=3", got)
	}
}

func TestRetryOnlyIdempotent(t *testing.T) {
	srv, calls := flakyServer(t, 100, "0")
	c := New(srv.URL, WithRetry(fastRetry(5)))
	if _, err := c.Reload(context.Background(), "x"); err == nil {
		t.Fatal("reload should fail")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("non-idempotent reload was retried: %d calls", got)
	}
}

func TestRetryDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "bad loop"})
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetry(fastRetry(5)))
	_, err := c.Predict(context.Background(), PredictRequest{Source: "k"})
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusBadRequest {
		t.Fatalf("want 400, got %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("4xx was retried: %d calls", calls.Load())
	}
}

func TestRetryRespectsContextDeadline(t *testing.T) {
	srv, _ := flakyServer(t, 100, "")
	// Long backoff vs. a short deadline: the loop must give up promptly
	// rather than sleep past the deadline.
	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Second, MaxDelay: 20 * time.Second, Seed: 1}))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Predict(ctx, PredictRequest{Source: "k"})
	if err == nil {
		t.Fatal("expected failure")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop slept %v past a 100ms deadline", elapsed)
	}
	if !IsOverloaded(err) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("final error should surface the 503 or the deadline: %v", err)
	}
}

func TestRetryHonorsRetryAfterClamped(t *testing.T) {
	p := fastRetry(4).withDefaults()
	r := &retrier{policy: p, rng: rand.New(rand.NewSource(p.Seed))}
	// Hint below the clamp: backoff floor is the hint.
	if d := r.backoff(0, 20*time.Millisecond); d < 20*time.Millisecond {
		t.Errorf("backoff %v ignored the Retry-After floor", d)
	}
	// Absurd hint: clamped to MaxRetryAfter, not honored verbatim.
	if d := r.backoff(0, time.Hour); d > MaxRetryAfter {
		t.Errorf("backoff %v exceeded the %v clamp", d, MaxRetryAfter)
	} else if d < MaxRetryAfter {
		t.Errorf("clamped hint should still floor the backoff: %v", d)
	}
}

func TestParseRetryAfterClamp(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"3", 3 * time.Second}, {"-5", 0}, {"nonsense", 0},
		{"86400", MaxRetryAfter}, {"30", 30 * time.Second},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	srv, calls := flakyServer(t, 3, "0")
	now := time.Unix(0, 0)
	c := New(srv.URL, WithBreaker(3, time.Second))
	c.eps[0].breaker.now = func() time.Time { return now }
	ctx := context.Background()

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Predict(ctx, PredictRequest{Source: "k"}); !IsOverloaded(err) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	rejectsBefore := mBreakerRejects.Value()
	if _, err := c.Predict(ctx, PredictRequest{Source: "k"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker let a request through: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls while breaker open, want 3", calls.Load())
	}
	if mBreakerRejects.Value() <= rejectsBefore {
		t.Error("client.breaker.rejects did not move")
	}

	// After the cooldown, one half-open probe goes through; the server is
	// healthy now, so the probe closes the circuit.
	now = now.Add(2 * time.Second)
	if _, err := c.Predict(ctx, PredictRequest{Source: "k"}); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if _, err := c.Predict(ctx, PredictRequest{Source: "k"}); err != nil {
		t.Fatalf("closed-circuit request: %v", err)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	srv, _ := flakyServer(t, 100, "0")
	now := time.Unix(0, 0)
	c := New(srv.URL, WithBreaker(2, time.Second))
	c.eps[0].breaker.now = func() time.Time { return now }
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		c.Predict(ctx, PredictRequest{Source: "k"})
	}
	// Cooldown passes; the probe fails; the circuit reopens for a fresh
	// cooldown.
	now = now.Add(1100 * time.Millisecond)
	if _, err := c.Predict(ctx, PredictRequest{Source: "k"}); !IsOverloaded(err) {
		t.Fatalf("probe should reach the server: %v", err)
	}
	if _, err := c.Predict(ctx, PredictRequest{Source: "k"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe should reopen the breaker: %v", err)
	}
	// 4xx answers prove the server is up: they must not count as faults.
	b := &breaker{threshold: 1, cooldown: time.Second, now: func() time.Time { return now }}
	b.record(serverFault(&APIError{Status: http.StatusBadRequest}))
	if b.open {
		t.Error("a 400 tripped the breaker")
	}
}

func TestBodyDrainKeepsConnectionsReused(t *testing.T) {
	// Count TCP dials the client makes: with proper drain-and-close, a
	// burst of error responses reuses one keep-alive connection.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "nope"})
	}))
	defer srv.Close()

	var dials atomic.Int64
	dialer := &net.Dialer{}
	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			return dialer.DialContext(ctx, network, addr)
		},
	}
	defer tr.CloseIdleConnections()
	c := New(srv.URL, WithHTTPClient(&http.Client{Transport: tr}))
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := c.Predict(ctx, PredictRequest{Source: "k"}); err == nil {
			t.Fatal("expected 422")
		}
	}
	if got := dials.Load(); got != 1 {
		t.Errorf("error responses burned %d connections, want 1 (drain-and-close + keep-alive)", got)
	}
}

// TestBackoffExportedSchedule pins the exported Backoff helper other
// subsystems (the dist worker) drive directly: full-jitter delays stay
// under the growing ceiling, server hints floor the delay, and Sleep
// honors context cancellation.
func TestBackoffExportedSchedule(t *testing.T) {
	bo := NewBackoff(RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Seed:        42,
	})
	if got := bo.MaxAttempts(); got != 5 {
		t.Fatalf("MaxAttempts = %d, want 5", got)
	}
	for attempt := 0; attempt < 12; attempt++ {
		d := bo.Delay(attempt, 0)
		if d < 0 || d > 80*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside [0, MaxDelay]", attempt, d)
		}
	}
	// A server hint floors the jittered delay.
	if d := bo.Delay(0, 50*time.Millisecond); d < 50*time.Millisecond {
		t.Fatalf("hinted delay %v below the 50ms hint", d)
	}
	// Cancellation interrupts the sleep.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := bo.Sleep(ctx, 3, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on cancelled context: %v", err)
	}
}
