package client

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Stable machine-readable error codes carried by APIError.Code. They name
// the failure class independently of HTTP status numerology, so callers
// switch on a code instead of memorizing which statuses the service emits.
const (
	CodeBadRequest    = "bad_request"    // 400: malformed or invalid request
	CodeNotFound      = "not_found"      // 404: unknown route or model version
	CodeConflict      = "conflict"       // 409: operation refused in the current state
	CodeUnprocessable = "unprocessable"  // 422: request parsed but prediction failed
	CodeOverCapacity  = "over_capacity"  // 429: rate or quota exceeded
	CodeInternal      = "internal"       // 500: server-side failure (contained panic)
	CodeBadGateway    = "bad_gateway"    // 502: intermediary failure
	CodeUnavailable   = "unavailable"    // 503: load shed, drain, or breaker
	CodeTimeout       = "timeout"        // 504: deadline exceeded server-side
)

// codeForStatus maps an HTTP status to its stable code. Unlisted statuses
// get a synthetic "http_<n>" code rather than losing information.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusUnprocessableEntity:
		return CodeUnprocessable
	case http.StatusTooManyRequests:
		return CodeOverCapacity
	case http.StatusInternalServerError:
		return CodeInternal
	case http.StatusBadGateway:
		return CodeBadGateway
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	case http.StatusGatewayTimeout:
		return CodeTimeout
	}
	return fmt.Sprintf("http_%d", status)
}

// APIError is a non-2xx answer from the service — the single error type
// every Client method returns for protocol-level failures. Status and Code
// classify the failure, RequestID ties it to the server's logs and trace
// ring, Endpoint names the replica that answered, and for 503/429 answers
// RetryAfter carries the server's backoff hint clamped to MaxRetryAfter.
//
// APIError supports errors.As, and errors.Is against a template: a target
// *APIError matches when every one of its non-zero fields (Status, Code,
// Endpoint) equals the error's.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RequestID  string
	Endpoint   string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	s := fmt.Sprintf("unrolld: %s (HTTP %d %s", e.Message, e.Status, e.Code)
	if e.Endpoint != "" {
		s += " from " + e.Endpoint
	}
	return s + ")"
}

// Is implements template matching for errors.Is: every non-zero field of
// the target must match. An all-zero target matches any APIError.
func (e *APIError) Is(target error) bool {
	t, ok := target.(*APIError)
	if !ok {
		return false
	}
	if t.Status != 0 && t.Status != e.Status {
		return false
	}
	if t.Code != "" && t.Code != e.Code {
		return false
	}
	if t.Endpoint != "" && t.Endpoint != e.Endpoint {
		return false
	}
	return true
}

// IsOverloaded reports whether an error is the service shedding load
// (backpressure, drain, or rate limiting); callers should back off and
// retry. It sees through retry-loop wrapping.
func IsOverloaded(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		return false
	}
	return ae.Status == http.StatusServiceUnavailable || ae.Status == http.StatusTooManyRequests
}
