package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// predictServer answers every /v1/predict with the given factor and
// counts the calls it sees.
func predictServer(t *testing.T, factor int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		json.NewEncoder(w).Encode(PredictResponse{Factor: factor, Fingerprint: "fp"})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestDeprecatedNewMatchesNewClient pins the compatibility contract of the
// deprecated single-endpoint constructor: New(base) must behave exactly
// like NewClient with one configured endpoint — same answers, same errors.
func TestDeprecatedNewMatchesNewClient(t *testing.T) {
	srv, _ := predictServer(t, 4)
	old := New(srv.URL)
	neu, err := NewClient(Config{Endpoints: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, errA := old.Predict(ctx, PredictRequest{Source: "k"})
	b, errB := neu.Predict(ctx, PredictRequest{Source: "k"})
	if errA != nil || errB != nil {
		t.Fatalf("predict: %v / %v", errA, errB)
	}
	if *a != *b {
		t.Fatalf("shim answer %+v differs from NewClient answer %+v", a, b)
	}
	if got, want := old.Endpoints(), neu.Endpoints(); len(got) != 1 || got[0] != want[0] {
		t.Fatalf("endpoints %v vs %v", got, want)
	}

	// Errors must map identically too.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "nope"})
	}))
	defer bad.Close()
	oldErr := func() *APIError {
		_, err := New(bad.URL).Predict(ctx, PredictRequest{Source: "k"})
		return err.(*APIError)
	}()
	c2, _ := NewClient(Config{}, WithEndpoints(bad.URL))
	newErr := func() *APIError {
		_, err := c2.Predict(ctx, PredictRequest{Source: "k"})
		return err.(*APIError)
	}()
	if oldErr.Status != newErr.Status || oldErr.Code != newErr.Code || oldErr.Message != newErr.Message {
		t.Fatalf("shim error %+v differs from NewClient error %+v", oldErr, newErr)
	}
}

func TestNewClientRequiresEndpoint(t *testing.T) {
	if _, err := NewClient(Config{}); err == nil {
		t.Fatal("NewClient with no endpoints must error")
	}
}

// TestAPIErrorMapping checks every Client method surfaces the same typed
// *APIError: status, stable code, message, request ID, and the answering
// endpoint, with errors.Is template matching on top.
func TestAPIErrorMapping(t *testing.T) {
	cases := []struct {
		status int
		code   string
	}{
		{http.StatusBadRequest, CodeBadRequest},
		{http.StatusNotFound, CodeNotFound},
		{http.StatusConflict, CodeConflict},
		{http.StatusUnprocessableEntity, CodeUnprocessable},
		{http.StatusTooManyRequests, CodeOverCapacity},
		{http.StatusInternalServerError, CodeInternal},
		{http.StatusBadGateway, CodeBadGateway},
		{http.StatusServiceUnavailable, CodeUnavailable},
		{http.StatusGatewayTimeout, CodeTimeout},
		{http.StatusTeapot, "http_418"},
	}
	var status atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-Id", r.Header.Get("X-Request-Id"))
		w.WriteHeader(int(status.Load()))
		json.NewEncoder(w).Encode(ErrorResponse{Error: "boom"})
	}))
	defer srv.Close()
	c := New(srv.URL)
	ctx := context.Background()
	for _, tc := range cases {
		status.Store(int64(tc.status))
		_, err := c.Predict(ctx, PredictRequest{Source: "k"})
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Fatalf("status %d: no APIError in %v", tc.status, err)
		}
		if ae.Status != tc.status || ae.Code != tc.code {
			t.Errorf("status %d: got (%d, %q), want (%d, %q)", tc.status, ae.Status, ae.Code, tc.status, tc.code)
		}
		if ae.Message != "boom" || ae.Endpoint != srv.URL || ae.RequestID == "" {
			t.Errorf("status %d: incomplete error %+v", tc.status, ae)
		}
		if !strings.Contains(ae.Error(), "boom") || !strings.Contains(ae.Error(), ae.Code) {
			t.Errorf("Error() lost context: %q", ae.Error())
		}
		// Template matching: any subset of non-zero fields must match.
		if !errors.Is(err, &APIError{Status: tc.status}) ||
			!errors.Is(err, &APIError{Code: tc.code}) ||
			!errors.Is(err, &APIError{Status: tc.status, Endpoint: srv.URL}) {
			t.Errorf("status %d: errors.Is template match failed", tc.status)
		}
		if errors.Is(err, &APIError{Status: tc.status + 1}) {
			t.Errorf("status %d: errors.Is matched a different status", tc.status)
		}
		wantOverloaded := tc.status == http.StatusServiceUnavailable || tc.status == http.StatusTooManyRequests
		if IsOverloaded(err) != wantOverloaded {
			t.Errorf("status %d: IsOverloaded = %v", tc.status, IsOverloaded(err))
		}
	}

	// Non-idempotent methods return the same typed error.
	status.Store(http.StatusConflict)
	if _, err := c.ModelPromote(ctx, "x"); !errors.Is(err, &APIError{Code: CodeConflict}) {
		t.Errorf("ModelPromote error not mapped: %v", err)
	}
}

// TestFailoverIgnoresSiblingRetryAfter pins the per-endpoint Retry-After
// semantics: a 503 hint from one replica parks that replica alone — the
// very next attempt goes to a healthy sibling immediately instead of
// sleeping out the hint.
func TestFailoverIgnoresSiblingRetryAfter(t *testing.T) {
	var sickCalls atomic.Int64
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		sickCalls.Add(1)
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "shedding"})
	}))
	defer sick.Close()
	healthy, healthyCalls := predictServer(t, 4)

	c, err := NewClient(Config{
		Endpoints: []string{sick.URL, healthy.URL},
		Retry:     &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := c.Predict(ctx, PredictRequest{Source: "k"}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("20 calls took %v — a sibling's Retry-After delayed failover", elapsed)
	}
	// The hint parks the sick endpoint on first contact; the picker must
	// not route to it again within the 30s hold.
	if got := sickCalls.Load(); got > 2 {
		t.Errorf("sick endpoint saw %d calls after its Retry-After hold", got)
	}
	if healthyCalls.Load() < 20 {
		t.Errorf("healthy endpoint saw only %d calls", healthyCalls.Load())
	}
}

// TestRetryBudgetExhausted pins the anti-retry-storm bound: with a Burst-2
// budget, a persistently failing endpoint gets the first attempt plus two
// budget-funded retries, then the client gives up naming the budget.
func TestRetryBudgetExhausted(t *testing.T) {
	srv, calls := flakyServer(t, 1000, "0")
	c, err := NewClient(Config{
		Endpoints: []string{srv.URL},
		Retry:     &RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 3},
		Budget:    &RetryBudget{Ratio: 0.1, Burst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := mBudgetExhausted.Value()
	_, err = c.Predict(context.Background(), PredictRequest{Source: "k"})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Errorf("error does not name the budget: %v", err)
	}
	if !IsOverloaded(err) {
		t.Errorf("wrapped budget error lost the 503: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (first attempt + Burst=2 retries)", got)
	}
	if mBudgetExhausted.Value() == before {
		t.Error("client.retry.budget_exhausted did not move")
	}
}
