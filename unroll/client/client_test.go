package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// The full client/server contract is exercised end to end in
// internal/serve's tests; here we pin down the client's own error
// handling against a canned server.
func TestClientErrorHandling(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/predict":
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "admission queue full"})
		case "/v1/predict/batch":
			json.NewEncoder(w).Encode(BatchResponse{Results: []BatchResult{{Factor: 2}}})
		case "/healthz":
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer srv.Close()
	c := New(srv.URL + "/") // trailing slash is normalized
	ctx := context.Background()

	_, err := c.Predict(ctx, PredictRequest{Source: "kernel k lang=c {}"})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("want *APIError, got %v", err)
	}
	if ae.Status != http.StatusServiceUnavailable || ae.Message != "admission queue full" {
		t.Errorf("APIError = %+v", ae)
	}
	if ae.RetryAfter != 3*time.Second {
		t.Errorf("RetryAfter = %v", ae.RetryAfter)
	}
	if !IsOverloaded(err) {
		t.Error("503 should report overloaded")
	}

	// A mis-sized batch response is an error, not a silent truncation.
	if _, err := c.PredictBatch(ctx, make([]PredictRequest, 2)); err == nil {
		t.Error("expected length-mismatch error")
	}

	if err := c.Healthz(ctx); err == nil {
		t.Error("expected healthz error for 500")
	} else if IsOverloaded(err) {
		t.Error("500 is not overload")
	}
}
