package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"metaopt/internal/obs"
)

// Client-side resilience telemetry.
var (
	mRetries         = obs.C("client.retries")
	mRetryGiveUps    = obs.C("client.retry.giveups")
	mFailovers       = obs.C("client.failovers")
	mBudgetExhausted = obs.C("client.retry.budget_exhausted")
	mBreakerOpens    = obs.C("client.breaker.opens")
	mBreakerRejects  = obs.C("client.breaker.rejects")
	mBreakerProbes   = obs.C("client.breaker.probes")
)

// MaxRetryAfter caps how long a server-sent Retry-After hint is honored.
// A misbehaving (or hostile) server must not be able to park clients for
// an hour by emitting "Retry-After: 3600".
const MaxRetryAfter = 30 * time.Second

// RetryPolicy configures exponential backoff with full jitter for
// idempotent requests (predictions and reads; never admin reloads).
//
// Attempt n sleeps a uniformly random duration in [0, min(MaxDelay,
// BaseDelay·2ⁿ)) — "full jitter", which decorrelates a thundering herd of
// retrying clients. When the failed response carried a Retry-After hint the
// sleep is at least that hint (clamped to MaxRetryAfter): the server's
// explicit backpressure signal is honored, never trusted verbatim.
//
// Retries stop at MaxAttempts total tries, on the first non-retryable
// error (4xx, context cancellation), or when the context's deadline would
// expire before the backoff completes — whichever comes first.
type RetryPolicy struct {
	MaxAttempts int           // total tries including the first (default 4)
	BaseDelay   time.Duration // first backoff ceiling (default 100ms)
	MaxDelay    time.Duration // backoff ceiling growth limit (default 5s)
	Seed        int64         // jitter seed; 0 seeds from the clock
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = time.Now().UnixNano()
	}
	return p
}

// ErrCircuitOpen is returned (wrapped) while the breaker is open; the
// request was never sent.
var ErrCircuitOpen = errors.New("circuit breaker open")

// Backoff exposes the client's full-jitter retry schedule to other
// subsystems: the distributed labeling worker reuses it for lease polls,
// heartbeats, and shard uploads instead of growing a second, subtly
// different backoff implementation. Safe for concurrent use.
type Backoff struct{ r *retrier }

// NewBackoff builds a schedule from a RetryPolicy (zero fields take the
// policy's defaults).
func NewBackoff(p RetryPolicy) *Backoff {
	p = p.withDefaults()
	return &Backoff{r: &retrier{policy: p, rng: rand.New(rand.NewSource(p.Seed))}}
}

// Delay returns the attempt-th (0-based) backoff: uniform in [0,
// min(MaxDelay, BaseDelay·2ⁿ)], floored by a server hint clamped to
// MaxRetryAfter.
func (b *Backoff) Delay(attempt int, hint time.Duration) time.Duration {
	return b.r.backoff(attempt, hint)
}

// Sleep blocks for the attempt's backoff, returning early when ctx ends or
// its deadline would expire mid-sleep.
func (b *Backoff) Sleep(ctx context.Context, attempt int, hint time.Duration) error {
	return b.r.sleep(ctx, attempt, hint)
}

// MaxAttempts reports the policy's total-tries budget, so callers driving
// their own loops stop where the client would.
func (b *Backoff) MaxAttempts() int { return b.r.policy.MaxAttempts }

// retrier holds the armed policy plus a locked jitter source (clients are
// used concurrently).
type retrier struct {
	policy RetryPolicy
	mu     sync.Mutex
	rng    *rand.Rand
}

// backoff computes the attempt-th sleep (0-based), honoring a clamped
// Retry-After hint as the floor.
func (r *retrier) backoff(attempt int, hint time.Duration) time.Duration {
	ceil := r.policy.BaseDelay << attempt
	if ceil > r.policy.MaxDelay || ceil <= 0 {
		ceil = r.policy.MaxDelay
	}
	r.mu.Lock()
	d := time.Duration(r.rng.Int63n(int64(ceil) + 1))
	r.mu.Unlock()
	if hint > MaxRetryAfter {
		hint = MaxRetryAfter
	}
	if d < hint {
		d = hint
	}
	return d
}

// sleep blocks for the attempt's backoff, or returns early when ctx ends
// or its deadline would expire mid-sleep (no point burning the rest of the
// budget on a sleep that cannot be followed by a request).
func (r *retrier) sleep(ctx context.Context, attempt int, hint time.Duration) error {
	d := r.backoff(attempt, hint)
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
		return fmt.Errorf("retry backoff %v exceeds the context's remaining budget: %w", d, context.DeadlineExceeded)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable reports whether an error is worth another attempt: transport
// failures and the load-shedding statuses (429/502/503/504). Client
// mistakes (4xx), prediction failures (422), server bugs (500), and
// context cancellation are not.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return true // transport-level failure: connection refused/reset, etc.
}

// serverFault reports whether an error should trip the breaker: transport
// failures and 5xx. A 4xx proves the server is alive and answering.
func serverFault(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500
	}
	return !errors.Is(err, context.Canceled)
}

// retryAfterOf extracts a failed attempt's Retry-After hint, if any.
func retryAfterOf(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

// breaker is a minimal three-state circuit breaker. All transitions happen
// under mu; the hot path is one short critical section per request.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	failures int
	open     bool
	openedAt time.Time
	probing  bool
}

// allow gates a request: nil while closed, nil for exactly one probe per
// cooldown while open, ErrCircuitOpen otherwise.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return nil
	}
	if wait := b.openedAt.Add(b.cooldown).Sub(b.now()); wait > 0 {
		mBreakerRejects.Inc()
		return fmt.Errorf("%w: %d consecutive failures, retry in %v", ErrCircuitOpen, b.failures, wait.Round(time.Millisecond))
	}
	if b.probing {
		mBreakerRejects.Inc()
		return fmt.Errorf("%w: half-open probe already in flight", ErrCircuitOpen)
	}
	b.probing = true
	mBreakerProbes.Inc()
	return nil
}

// canAttempt is the endpoint picker's non-mutating preview of allow: true
// when a request would be admitted right now (closed, or open past its
// cooldown with no probe in flight). It never claims the probe slot and
// bumps no counters, so scanning candidates has no side effects.
func (b *breaker) canAttempt() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.openedAt.Add(b.cooldown).After(b.now()) {
		return false
	}
	return !b.probing
}

// record feeds a request's outcome back into the breaker.
func (b *breaker) record(fault bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !fault {
		b.failures = 0
		b.open = false
		b.probing = false
		return
	}
	b.failures++
	if b.probing {
		// The half-open probe failed: reopen for a fresh cooldown.
		b.probing = false
		b.openedAt = b.now()
		mBreakerOpens.Inc()
		return
	}
	if !b.open && b.failures >= b.threshold {
		b.open = true
		b.openedAt = b.now()
		mBreakerOpens.Inc()
	}
}
