package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"metaopt/internal/obs"
)

// TestRequestIDStableAcrossRetries checks one logical call carries one
// X-Request-Id through every retry attempt, and a fresh call gets a
// fresh ID.
func TestRequestIDStableAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get("X-Request-Id"))
		n := len(ids)
		mu.Unlock()
		if n < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "shedding"})
			return
		}
		json.NewEncoder(w).Encode(PredictResponse{Factor: 2})
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetry(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Seed:        1,
	}))
	resp, err := c.Predict(context.Background(), PredictRequest{Source: "kernel k lang=c { double x[]; for i = 0 .. 4 { x[i] = 0.0; } }"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Factor != 2 {
		t.Fatalf("factor %d", resp.Factor)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 3 {
		t.Fatalf("%d attempts, want 3", len(ids))
	}
	if ids[0] == "" {
		t.Fatal("no X-Request-Id sent")
	}
	for i, id := range ids {
		if id != ids[0] {
			t.Errorf("attempt %d changed the request ID: %q vs %q", i, id, ids[0])
		}
	}

	// A second logical call must mint a different ID.
	ids = ids[:2] // next call succeeds on its first attempt (len goes to 3)
	firstID := ids[0]
	mu.Unlock()
	if _, err := c.Predict(context.Background(), PredictRequest{Source: "x"}); err != nil {
		mu.Lock()
		t.Fatal(err)
	}
	mu.Lock()
	if got := ids[len(ids)-1]; got == firstID {
		t.Errorf("second call reused the first call's ID %q", got)
	}
}

// TestClientEndpointMetrics checks each endpoint feeds its own request
// counter and latency histogram.
func TestClientEndpointMetrics(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/predict":
			json.NewEncoder(w).Encode(PredictResponse{Factor: 1})
		case "/healthz":
			w.Write([]byte("ok\n"))
		default:
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "no such endpoint"})
		}
	}))
	defer srv.Close()
	c := New(srv.URL)
	ctx := context.Background()

	predictBefore := obs.C("client.predict.requests").Value()
	healthBefore := obs.C("client.healthz.requests").Value()
	modelErrsBefore := obs.C("client.model.errors").Value()
	latBefore := obs.H("client.predict.latency_us", nil).Count()

	if _, err := c.Predict(ctx, PredictRequest{Source: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Model(ctx); err == nil {
		t.Fatal("expected 404 from model endpoint")
	}

	if got := obs.C("client.predict.requests").Value() - predictBefore; got != 1 {
		t.Errorf("predict requests moved by %d, want 1", got)
	}
	if got := obs.C("client.healthz.requests").Value() - healthBefore; got != 1 {
		t.Errorf("healthz requests moved by %d, want 1", got)
	}
	if got := obs.C("client.model.errors").Value() - modelErrsBefore; got != 1 {
		t.Errorf("model errors moved by %d, want 1", got)
	}
	if got := obs.H("client.predict.latency_us", nil).Count() - latBefore; got != 1 {
		t.Errorf("predict latency observations moved by %d, want 1", got)
	}
}
