package unroll_test

import (
	"context"
	"sync"
	"testing"

	"metaopt/unroll"
)

// allAlgorithms is every Algorithm with a compiled lowering — which must be
// all of them.
var allAlgorithms = []unroll.Algorithm{
	unroll.NearNeighbor, unroll.LSSVM, unroll.LSSVMECOC, unroll.SMOSVM,
	unroll.Regress, unroll.DecisionTree, unroll.BoostedTree,
}

var equivOnce struct {
	sync.Once
	d     *unroll.Dataset
	loops []*unroll.Loop
	err   error
}

// equivCorpus trains on one small dataset and collects every loop of the
// full-scale generated corpus as the equivalence query set.
func equivCorpus(t *testing.T) (*unroll.Dataset, []*unroll.Loop) {
	t.Helper()
	equivOnce.Do(func() {
		c, err := unroll.GenerateCorpus(5, 0.08)
		if err != nil {
			equivOnce.err = err
			return
		}
		equivOnce.d, equivOnce.err = unroll.CollectDataset(c, unroll.CollectOptions{Seed: 1, Runs: 5})
		if equivOnce.err != nil {
			return
		}
		full, err := unroll.GenerateCorpus(2005, 1.0)
		if err != nil {
			equivOnce.err = err
			return
		}
		for _, b := range full.Benchmarks {
			equivOnce.loops = append(equivOnce.loops, b.Loops...)
		}
	})
	if equivOnce.err != nil {
		t.Fatal(equivOnce.err)
	}
	return equivOnce.d, equivOnce.loops
}

// TestCompiledMatchesInterpretedCorpus is the equivalence corpus test the
// compiled fingerprint contract rests on: for every algorithm, over every
// loop of the full generated corpus, the compiled exact path must agree
// bit-for-bit with the interpreted predictor, and the float32 batch path
// must reach the same decisions.
func TestCompiledMatchesInterpretedCorpus(t *testing.T) {
	d, loops := equivCorpus(t)
	mach := unroll.Itanium2()
	for _, alg := range allAlgorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			c, err := unroll.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := c.Fingerprint(), p.Fingerprint()+"+"+c.Version(); got != want {
				t.Fatalf("fingerprint = %q, want %q", got, want)
			}
			var batchDiverged int
			for i, l := range loops {
				v := unroll.Features(l, mach)
				want, err := p.PredictFeatures(v)
				if err != nil {
					t.Fatalf("loop %d: interpreted: %v", i, err)
				}
				got, err := c.PredictFeatures(v)
				if err != nil {
					t.Fatalf("loop %d: compiled: %v", i, err)
				}
				if got != want {
					t.Fatalf("loop %d: compiled exact path = %d, interpreted = %d", i, got, want)
				}
				if fast := c.Predict(v); fast != want {
					t.Fatalf("loop %d: compiled Predict = %d, interpreted = %d", i, fast, want)
				}
			}
			// Batch path over the same corpus in serve-sized chunks.
			const chunk = 256
			for lo := 0; lo < len(loops); lo += chunk {
				hi := min(lo+chunk, len(loops))
				got, err := c.PredictBatch(context.Background(), loops[lo:hi])
				if err != nil {
					t.Fatal(err)
				}
				for i, u := range got {
					want, err := p.PredictCtx(context.Background(), loops[lo+i])
					if err != nil {
						t.Fatal(err)
					}
					if u != want {
						batchDiverged++
						t.Errorf("loop %d: f32 batch = %d, interpreted = %d", lo+i, u, want)
					}
				}
			}
			if batchDiverged > 0 {
				t.Fatalf("%s: %d/%d batch decisions diverged from interpreted", alg, batchDiverged, len(loops))
			}
		})
	}
}

// TestCompiledPredictZeroAllocs pins the hot path's contract: after warmup,
// Predict on a projected feature vector performs zero heap allocations.
func TestCompiledPredictZeroAllocs(t *testing.T) {
	d, loops := equivCorpus(t)
	mach := unroll.Itanium2()
	q := unroll.Features(loops[0], mach)
	for _, alg := range allAlgorithms {
		t.Run(string(alg), func(t *testing.T) {
			p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			c, err := unroll.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ { // warm the scratch pool
				c.Predict(q)
			}
			if allocs := testing.AllocsPerRun(100, func() { c.Predict(q) }); allocs != 0 {
				t.Errorf("%s: Predict allocates %.1f times per op, want 0", alg, allocs)
			}
		})
	}
}

// TestCompiledBatchReuse checks the Into/grown-output forms reuse caller
// storage and stay consistent with the plain batch form.
func TestCompiledBatchReuse(t *testing.T) {
	d, loops := equivCorpus(t)
	if len(loops) > 64 {
		loops = loops[:64]
	}
	mach := unroll.Itanium2()
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	c, err := unroll.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.PredictBatch(context.Background(), loops)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(loops))
	if err := c.PredictBatchInto(context.Background(), loops, out); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("loop %d: Into = %d, batch = %d", i, out[i], want[i])
		}
	}
	if err := c.PredictBatchInto(context.Background(), loops, out[:1]); err == nil && len(loops) > 1 {
		t.Error("expected size-mismatch error")
	}
	vs := make([][]float64, len(loops))
	for i, l := range loops {
		vs[i] = unroll.Features(l, mach)
	}
	buf := make([]int, 0, len(vs))
	got, err := c.PredictFeaturesBatch(vs, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Error("PredictFeaturesBatch reallocated despite sufficient capacity")
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("loop %d: features batch = %d, loop batch = %d", i, got[i], want[i])
		}
	}
}

// TestCompileRejectsNil covers the error boundary.
func TestCompileRejectsNil(t *testing.T) {
	if _, err := unroll.Compile(nil); err == nil {
		t.Error("expected error for nil predictor")
	}
}
