package unroll_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metaopt/internal/atomicio"
	"metaopt/internal/faults"
	"metaopt/unroll"
)

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	d := smallDataset(t)
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := unroll.LoadPredictorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Fingerprint() != p.Fingerprint() {
		t.Errorf("fingerprint changed across the file round trip: %.12s vs %.12s", q.Fingerprint(), p.Fingerprint())
	}
	for _, l := range queryLoops(t) {
		if a, b := p.Predict(l), q.Predict(l); a != b {
			t.Errorf("prediction diverged after file round trip: %d vs %d", a, b)
		}
	}
}

// TestSaveFileTornWriteKeepsOldArtifact is the crash-safety chaos test: a
// write that tears mid-stream must fail loudly and leave the previous
// artifact loadable.
func TestSaveFileTornWriteKeepsOldArtifact(t *testing.T) {
	defer faults.Reset()
	d := smallDataset(t)
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A second predictor tries to overwrite the artifact; the write tears
	// after 200 bytes.
	p2, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.DecisionTree})
	if err != nil {
		t.Fatal(err)
	}
	faults.MustInstall(faults.Spec{Site: atomicio.WriteSite, Kind: faults.KindTorn, Bytes: 200, Count: 1})
	if err := p2.SaveFile(path); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("torn save: %v, want ErrInjected", err)
	}
	faults.Reset()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatal("torn write altered the artifact on disk")
	}
	if _, err := unroll.LoadPredictorFile(path); err != nil {
		t.Fatalf("artifact unloadable after failed overwrite: %v", err)
	}
}

// TestLoadFileTruncatedArtifactRejected: a half-written artifact (as from a
// torn copy or a crash without atomic rename) must be rejected, not loaded
// as a silently-wrong model.
func TestLoadFileTruncatedArtifactRejected(t *testing.T) {
	defer faults.Reset()
	d := smallDataset(t)
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// Injected truncation on the read side.
	faults.MustInstall(faults.Spec{Site: unroll.ReadSite, Kind: faults.KindTorn, Bytes: 128, Count: 1})
	if _, err := unroll.LoadPredictorFile(path); err == nil {
		t.Fatal("truncated read loaded successfully")
	}
	faults.Reset()

	// Physical truncation on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.json")
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := unroll.LoadPredictorFile(torn); err == nil {
		t.Fatal("half-written artifact loaded successfully")
	}

	// Bit-flip corruption that keeps the JSON valid: the fingerprint check
	// must catch it.
	flipped := strings.Replace(string(raw), `"machine": "itanium2"`, `"machine": "embedded2"`, 1)
	if flipped == string(raw) {
		t.Skip("artifact layout changed; corruption probe needs updating")
	}
	bad := filepath.Join(t.TempDir(), "flipped.json")
	if err := os.WriteFile(bad, []byte(flipped), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := unroll.LoadPredictorFile(bad); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint check missed in-place corruption: %v", err)
	}
}
