package unroll_test

import (
	"encoding/binary"
	"math"
	"sync"
	"testing"

	"metaopt/unroll"
)

var fuzzOnce struct {
	sync.Once
	pairs map[unroll.Algorithm]fuzzPair
	err   error
}

type fuzzPair struct {
	p *unroll.Predictor
	c *unroll.CompiledPredictor
}

func fuzzPredictors(f *testing.F) map[unroll.Algorithm]fuzzPair {
	f.Helper()
	fuzzOnce.Do(func() {
		c, err := unroll.GenerateCorpus(5, 0.08)
		if err != nil {
			fuzzOnce.err = err
			return
		}
		d, err := unroll.CollectDataset(c, unroll.CollectOptions{Seed: 1, Runs: 5})
		if err != nil {
			fuzzOnce.err = err
			return
		}
		fuzzOnce.pairs = make(map[unroll.Algorithm]fuzzPair)
		for _, alg := range allAlgorithms {
			p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: alg})
			if err != nil {
				fuzzOnce.err = err
				return
			}
			cp, err := unroll.Compile(p)
			if err != nil {
				fuzzOnce.err = err
				return
			}
			fuzzOnce.pairs[alg] = fuzzPair{p: p, c: cp}
		}
	})
	if fuzzOnce.err != nil {
		f.Fatal(fuzzOnce.err)
	}
	return fuzzOnce.pairs
}

// FuzzCompiledMatchesInterpreted hammers the compiled exact path with
// arbitrary finite feature vectors (full-length, decoded from raw bytes)
// and requires bit-identical agreement with the interpreted predictor for
// every algorithm. Non-finite values must be rejected by both boundaries.
func FuzzCompiledMatchesInterpreted(f *testing.F) {
	pairs := fuzzPredictors(f)
	seed := make([]byte, 8*unroll.NumFeatures)
	f.Add(seed)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 8*unroll.NumFeatures {
			t.Skip()
		}
		v := make([]float64, unroll.NumFeatures)
		finite := true
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
				finite = false
			}
		}
		for alg, pr := range pairs {
			want, errI := pr.p.PredictFeatures(v)
			got, errC := pr.c.PredictFeatures(v)
			if (errI == nil) != (errC == nil) {
				t.Fatalf("%s: interpreted err=%v, compiled err=%v", alg, errI, errC)
			}
			if errI != nil {
				if finite {
					t.Fatalf("%s: finite vector rejected: %v", alg, errI)
				}
				continue
			}
			if !finite {
				t.Fatalf("%s: non-finite vector accepted", alg)
			}
			if got != want {
				t.Fatalf("%s: compiled = %d, interpreted = %d for %v", alg, got, want, v)
			}
		}
	})
}
