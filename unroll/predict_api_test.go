package unroll_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"metaopt/internal/obs"
	"metaopt/unroll"
)

func TestPredictCtxMatchesPredict(t *testing.T) {
	d := smallDataset(t)
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.LSSVM})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queryLoops(t) {
		u, err := p.PredictCtx(context.Background(), q)
		if err != nil {
			t.Fatalf("PredictCtx(%s): %v", q.Name, err)
		}
		if legacy := p.Predict(q); u != legacy {
			t.Errorf("%s: PredictCtx %d != Predict %d", q.Name, u, legacy)
		}
	}
}

func TestPredictCtxErrors(t *testing.T) {
	d := smallDataset(t)
	p, err := unroll.Train(d, unroll.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictCtx(context.Background(), nil); err != unroll.ErrNilLoop {
		t.Errorf("nil loop: err = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.PredictCtx(ctx, queryLoops(t)[0]); err != context.Canceled {
		t.Errorf("canceled ctx: err = %v", err)
	}
}

func TestPredictBatch(t *testing.T) {
	d := smallDataset(t)
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	qs := queryLoops(t)
	got, err := p.PredictBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("batch returned %d results for %d loops", len(got), len(qs))
	}
	for i, q := range qs {
		if want := p.Predict(q); got[i] != want {
			t.Errorf("loop %d: batch %d != single %d", i, got[i], want)
		}
	}
	// A nil loop aborts the batch with a located error.
	if _, err := p.PredictBatch(context.Background(), []*unroll.Loop{qs[0], nil}); err == nil {
		t.Error("expected error for batch with nil loop")
	} else if !strings.Contains(err.Error(), "loop 1 of 2") {
		t.Errorf("batch error not located: %v", err)
	}
	// A canceled context aborts the batch.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.PredictBatch(ctx, qs); err == nil {
		t.Error("expected context error")
	}
}

func TestPredictFeatures(t *testing.T) {
	d := smallDataset(t)
	feats, err := unroll.SelectFeatures(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.LSSVM, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	l := queryLoops(t)[0]
	want := p.Predict(l)
	full := unroll.Features(l, unroll.Itanium2())
	// The full 38-vector is projected onto the subset.
	if got, err := p.PredictFeatures(full); err != nil || got != want {
		t.Errorf("full vector: (%d, %v), want %d", got, err, want)
	}
	// An already-projected vector is used as-is.
	proj := make([]float64, len(feats))
	for k, j := range feats {
		proj[k] = full[j]
	}
	if got, err := p.PredictFeatures(proj); err != nil || got != want {
		t.Errorf("projected vector: (%d, %v), want %d", got, err, want)
	}
	// Anything else is rejected.
	if _, err := p.PredictFeatures(make([]float64, 3)); err == nil {
		t.Error("expected length error")
	}
	// A full-featured predictor only takes the full vector.
	pFull, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pFull.PredictFeatures(full); err != nil {
		t.Errorf("full predictor, full vector: %v", err)
	}
	if _, err := pFull.PredictFeatures(proj); err == nil {
		t.Error("full predictor should reject a subset-length vector")
	}
}

// The legacy Predict must not panic or guess on bad input: it falls back to
// factor 1 and counts the event.
func TestPredictLegacyFallback(t *testing.T) {
	d := smallDataset(t)
	p, err := unroll.Train(d, unroll.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fallback := obs.C("unroll.predict.fallback")
	before := fallback.Value()
	if u := p.Predict(nil); u != 1 {
		t.Errorf("Predict(nil) = %d, want fallback 1", u)
	}
	if fallback.Value() != before+1 {
		t.Errorf("fallback counter = %d, want %d", fallback.Value(), before+1)
	}
}

func TestPredictorVersionFingerprint(t *testing.T) {
	d := smallDataset(t)
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	if p.Version() != unroll.PersistVersion {
		t.Errorf("trained predictor version = %d, want %d", p.Version(), unroll.PersistVersion)
	}
	if p.Fingerprint() == "" {
		t.Fatal("trained predictor has no fingerprint")
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := unroll.LoadPredictor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Fingerprint() != p.Fingerprint() {
		t.Errorf("fingerprint changed across round trip: %s -> %s", p.Fingerprint(), p2.Fingerprint())
	}
	if p2.Version() != unroll.PersistVersion {
		t.Errorf("loaded version = %d", p2.Version())
	}
	// Two different models fingerprint differently.
	pTree, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.DecisionTree})
	if err != nil {
		t.Fatal(err)
	}
	if pTree.Fingerprint() == p.Fingerprint() {
		t.Error("distinct models share a fingerprint")
	}
}

func TestLoadPredictorVersioning(t *testing.T) {
	d := smallDataset(t)
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}

	rewrite := func(mutate func(map[string]json.RawMessage)) []byte {
		clone := map[string]json.RawMessage{}
		for k, v := range env {
			clone[k] = v
		}
		mutate(clone)
		out, err := json.Marshal(clone)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	// A future format version is rejected with an actionable error.
	future := rewrite(func(m map[string]json.RawMessage) {
		m["version"] = json.RawMessage(`99`)
	})
	if _, err := unroll.LoadPredictor(bytes.NewReader(future)); err == nil {
		t.Error("expected rejection of future version")
	} else if !strings.Contains(err.Error(), "v99") || !strings.Contains(err.Error(), "metaopt train") {
		t.Errorf("future-version error not actionable: %v", err)
	}

	// A legacy blob (no version, no fingerprint) still loads.
	legacy := rewrite(func(m map[string]json.RawMessage) {
		delete(m, "version")
		delete(m, "fingerprint")
	})
	pLegacy, err := unroll.LoadPredictor(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy blob: %v", err)
	}
	if pLegacy.Version() != 0 {
		t.Errorf("legacy version = %d, want 0", pLegacy.Version())
	}
	if pLegacy.Fingerprint() == "" {
		t.Error("legacy load should compute a fingerprint")
	}
	l := queryLoops(t)[0]
	if pLegacy.Predict(l) != p.Predict(l) {
		t.Error("legacy blob predicts differently")
	}

	// A tampered model fails the fingerprint check.
	tampered := rewrite(func(m map[string]json.RawMessage) {
		m["machine"] = json.RawMessage(`"wide8"`)
	})
	if _, err := unroll.LoadPredictor(bytes.NewReader(tampered)); err == nil {
		t.Error("expected fingerprint mismatch for tampered artifact")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("tamper error: %v", err)
	}

	// Out-of-range feature indices are rejected up front.
	badFeats := rewrite(func(m map[string]json.RawMessage) {
		delete(m, "fingerprint")
		m["features"] = json.RawMessage(`[0, 500]`)
	})
	if _, err := unroll.LoadPredictor(bytes.NewReader(badFeats)); err == nil {
		t.Error("expected feature-range error")
	}
}
