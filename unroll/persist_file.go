package unroll

import (
	"fmt"
	"os"

	"metaopt/internal/atomicio"
	"metaopt/internal/faults"
)

// ReadSite is the fault-injection site armed inside LoadPredictorFile; a
// KindTorn spec there simulates reading a truncated artifact.
const ReadSite = "persist.read"

// SaveFile writes the predictor artifact to path crash-safely: the content
// lands in a temp file, is fsynced, and is renamed over path, so a kill at
// any instant leaves either the previous artifact or the new one — never a
// half-written file. After the rename the artifact is read back and its
// fingerprint checked against the in-memory predictor, catching silent
// write corruption before anyone trusts the file.
func (p *Predictor) SaveFile(path string) error {
	if err := atomicio.WriteFile(path, p.Save); err != nil {
		return err
	}
	want, err := p.computeFingerprint()
	if err != nil {
		return err
	}
	q, err := LoadPredictorFile(path)
	if err != nil {
		return fmt.Errorf("unroll: verify saved artifact %s: %w", path, err)
	}
	if q.fingerprint != want {
		return fmt.Errorf("unroll: saved artifact %s reads back with fingerprint %.12s…, want %.12s…: storage corrupted the write", path, q.fingerprint, want)
	}
	return nil
}

// LoadPredictorFile restores a predictor from an artifact written by
// SaveFile (or any Save output on disk), validating its recorded
// fingerprint against the content.
func LoadPredictorFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := faults.WrapReader(ReadSite, f)
	defer r.Close()
	p, err := LoadPredictor(r)
	if err != nil {
		return nil, fmt.Errorf("unroll: load %s: %w", path, err)
	}
	return p, nil
}
