package unroll_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"metaopt/unroll"
)

// jsonBytes renders a dataset through the JSON release format — the golden
// reference every other persistence path is compared against.
func jsonBytes(t *testing.T, d *unroll.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestColumnarRoundTripMatchesJSON is the golden equivalence test: a
// dataset written columnar and loaded back must re-serialize to the exact
// JSON bytes of the original — names, labels, cycles and every float bit
// survive the binary format.
func TestColumnarRoundTripMatchesJSON(t *testing.T) {
	d := smallDataset(t)
	want := jsonBytes(t, d)

	path := filepath.Join(t.TempDir(), "dataset.cols")
	if err := d.SaveColumnar(path, "seed=1 scale=0.08 runs=5"); err != nil {
		t.Fatal(err)
	}
	got, err := unroll.LoadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonBytes(t, got), want) {
		t.Fatal("columnar round trip changed the dataset (JSON golden mismatch)")
	}
}

// TestLoadDatasetFileSniffsFormat: the same entry point must open both the
// JSON release format and the binary columnar format, telling them apart
// by magic bytes.
func TestLoadDatasetFileSniffsFormat(t *testing.T) {
	d := smallDataset(t)
	want := jsonBytes(t, d)
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "dataset.json")
	if err := os.WriteFile(jsonPath, want, 0o644); err != nil {
		t.Fatal(err)
	}
	colPath := filepath.Join(dir, "dataset.cols")
	if err := d.SaveColumnar(colPath, ""); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{jsonPath, colPath} {
		got, err := unroll.LoadDatasetFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !bytes.Equal(jsonBytes(t, got), want) {
			t.Fatalf("%s: loaded dataset differs from original", path)
		}
	}
}

// TestOpenDatasetColumnarOutOfCore cross-validates straight off the mapped
// file — feature rows never materialized — and requires bit-identical
// evaluation results to the in-memory row path.
func TestOpenDatasetColumnarOutOfCore(t *testing.T) {
	d := smallDataset(t)
	path := filepath.Join(t.TempDir(), "dataset.cols")
	if err := d.SaveColumnar(path, ""); err != nil {
		t.Fatal(err)
	}
	lite, closeDS, err := unroll.OpenDatasetColumnar(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeDS()
	if lite.Len() != d.Len() {
		t.Fatalf("out-of-core Len = %d, want %d", lite.Len(), d.Len())
	}
	for _, alg := range []unroll.Algorithm{unroll.NearNeighbor, unroll.LSSVM} {
		opt := unroll.TrainOptions{Algorithm: alg}
		want, err := unroll.Evaluate(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := unroll.Evaluate(lite, opt)
		if err != nil {
			t.Fatalf("%s out of core: %v", alg, err)
		}
		if got.RankFrac != want.RankFrac {
			t.Fatalf("%s: out-of-core rank table %v, in-memory %v", alg, got.RankFrac, want.RankFrac)
		}
	}
}
