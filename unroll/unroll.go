// Package unroll is the public API of the metaopt library: supervised
// learning of loop-unrolling heuristics, as in Stephenson & Amarasinghe,
// "Predicting Unroll Factors Using Supervised Classification" (CGO 2005).
//
// The package wraps the full pipeline:
//
//   - parse loop kernels written in LoopLang and lower them to the loop IR,
//   - extract the 38-element static feature vector of a loop,
//   - unroll loops and time them on an Itanium-2-class machine model (with
//     or without software pipelining),
//   - build labeled corpora, select informative features, and train
//     near-neighbor, LS-SVM, SMO-SVM or regression predictors,
//   - cross-validate predictors and query their confidence.
//
// A minimal session:
//
//	loop, _ := unroll.ParseKernel(src)
//	pred, _ := unroll.TrainDefault(dataset)
//	factor := pred.Predict(loop)
package unroll

import (
	"fmt"

	"metaopt/internal/features"
	"metaopt/internal/heuristic"
	"metaopt/internal/ir"
	"metaopt/internal/lang"
	"metaopt/internal/loopgen"
	"metaopt/internal/machine"
	"metaopt/internal/sim"
	"metaopt/internal/transform"
)

// Loop is one innermost loop in the intermediate representation.
type Loop = ir.Loop

// Machine describes a target processor.
type Machine = machine.Desc

// Corpus is a generated benchmark corpus.
type Corpus = loopgen.Corpus

// Benchmark is one program of a corpus.
type Benchmark = loopgen.Benchmark

// MaxFactor is the largest unroll factor considered (the paper's limit).
const MaxFactor = transform.MaxFactor

// NumFeatures is the length of a loop feature vector.
const NumFeatures = features.NumFeatures

// Itanium2 returns the default machine model (the paper's platform).
func Itanium2() *Machine { return machine.Itanium2() }

// Embedded returns a narrow 2-issue machine for retargeting experiments.
func Embedded() *Machine { return machine.Embedded() }

// Wide returns a hypothetical 8-issue Itanium successor for retargeting
// experiments.
func Wide() *Machine { return machine.Wide() }

// ParseKernel parses LoopLang source containing exactly one kernel and
// lowers it to a Loop.
func ParseKernel(src string) (*Loop, error) {
	k, err := lang.ParseKernel(src)
	if err != nil {
		return nil, err
	}
	return lang.Lower(k)
}

// ParseFile parses LoopLang source containing any number of kernels.
func ParseFile(src string) ([]*Loop, error) {
	return lang.LowerFile(src)
}

// Features extracts the 38-element static feature vector of a loop.
func Features(l *Loop, m *Machine) []float64 {
	return features.Extract(l, m)
}

// FeatureNames returns the names of the 38 features, index-aligned with
// Features.
func FeatureNames() []string {
	return append([]string(nil), features.Names[:]...)
}

// FeatureIndex returns the index of a named feature, or -1.
func FeatureIndex(name string) int { return features.Index(name) }

// UnrollLoop returns a new loop whose body executes u iterations of l,
// after the post-unroll cleanups (load forwarding, coalescing, dead-store
// elimination). The input loop is unchanged.
func UnrollLoop(l *Loop, u int) (*Loop, error) {
	out, _, err := transform.Unroll(l, u)
	return out, err
}

// Heuristic returns the hand-written baseline's unroll factor for a loop,
// for the given pipelining mode.
func Heuristic(l *Loop, m *Machine, swp bool) int {
	if swp {
		return heuristic.SWP(l, m)
	}
	return heuristic.NoSWP(l, m)
}

// Timing reports the simulated cost of one compiled loop variant.
type Timing struct {
	Cycles    int64   // total cycles per program run
	PerIter   float64 // steady-state cycles per source iteration
	Pipelined bool
	II        int // initiation interval (pipelined loops)
	Stages    int
	Spills    int // spill cycles per body
	Ops       int // unrolled body size
}

// Timer times loop variants on a machine; it caches compilations.
type Timer struct {
	t *sim.Timer
}

// NewTimer returns a timer for the machine and pipelining mode.
func NewTimer(m *Machine, swp bool) *Timer {
	cfg := sim.DefaultConfig()
	cfg.Mach = m
	cfg.SWP = swp
	cfg.Noise = 0 // the public timer is deterministic
	return &Timer{t: sim.NewTimer(cfg)}
}

// Time compiles l at unroll factor u and reports its cost.
func (tm *Timer) Time(l *Loop, u int) (Timing, error) {
	if u < 1 || u > MaxFactor {
		return Timing{}, fmt.Errorf("unroll: factor %d out of range [1,%d]", u, MaxFactor)
	}
	cycles, err := tm.t.Cycles(l, u)
	if err != nil {
		return Timing{}, err
	}
	st, err := tm.t.Stats(l, u)
	if err != nil {
		return Timing{}, err
	}
	return Timing{
		Cycles:    cycles,
		PerIter:   st.Period,
		Pipelined: st.Pipelined,
		II:        st.II,
		Stages:    st.Stages,
		Spills:    st.SpillCycles,
		Ops:       st.BodyOps,
	}, nil
}

// Best sweeps all factors 1..MaxFactor and returns the cheapest.
func (tm *Timer) Best(l *Loop) (factor int, timings [MaxFactor + 1]Timing, err error) {
	factor = 1
	for u := 1; u <= MaxFactor; u++ {
		t, err := tm.Time(l, u)
		if err != nil {
			return 0, timings, err
		}
		timings[u] = t
		if t.Cycles < timings[factor].Cycles {
			factor = u
		}
	}
	return factor, timings, nil
}

// GenerateCorpus builds the 72-benchmark training corpus deterministically.
// Scale 1.0 yields the full ~3500-loop corpus; smaller values shrink it
// proportionally.
func GenerateCorpus(seed int64, scale float64) (*Corpus, error) {
	return GenerateCorpusReplicated(seed, scale, 1)
}

// GenerateCorpusReplicated additionally replicates the corpus the given
// number of times: each replica is regenerated from a deterministically
// perturbed seed with benchmark names suffixed "@rN", so reproducible
// 10×/100× stress corpora come straight from the CLI.
func GenerateCorpusReplicated(seed int64, scale float64, replicate int) (*Corpus, error) {
	return loopgen.Generate(loopgen.Options{Seed: seed, LoopsScale: scale, Replicate: replicate})
}
