package unroll_test

import (
	"bytes"
	"strings"
	"testing"

	"metaopt/unroll"
)

// roundTrip saves and reloads a predictor, then checks that predictions
// agree on a bag of query loops.
func roundTrip(t *testing.T, d *unroll.Dataset, alg unroll.Algorithm, queries []*unroll.Loop) {
	t.Helper()
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: alg, Seed: 3})
	if err != nil {
		t.Fatalf("%s: train: %v", alg, err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("%s: save: %v", alg, err)
	}
	p2, err := unroll.LoadPredictor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%s: load: %v", alg, err)
	}
	for i, q := range queries {
		if a, b := p.Predict(q), p2.Predict(q); a != b {
			t.Errorf("%s: query %d: %d vs %d after round trip", alg, i, a, b)
		}
	}
}

func queryLoops(t *testing.T) []*unroll.Loop {
	t.Helper()
	loops, err := unroll.ParseFile(daxpy + `
kernel q2 lang=fortran { double a[], b[]; double s; for i = 0 .. 512 { s = s + a[i]*b[i]; } }
kernel q3 lang=c { double a[]; int k[]; for i = 0 .. 64 { a[k[i]] = a[k[i]] + 1.0; } }`)
	if err != nil {
		t.Fatal(err)
	}
	return loops
}

func TestPredictorSaveLoadAllAlgorithms(t *testing.T) {
	d := smallDataset(t)
	qs := queryLoops(t)
	for _, alg := range []unroll.Algorithm{
		unroll.NearNeighbor, unroll.LSSVM, unroll.LSSVMECOC, unroll.SMOSVM,
		unroll.Regress, unroll.DecisionTree, unroll.BoostedTree,
	} {
		roundTrip(t, d, alg, qs)
	}
}

func TestPredictorSaveLoadWithFeatureSubset(t *testing.T) {
	d := smallDataset(t)
	feats, err := unroll.SelectFeatures(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.LSSVM, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := unroll.LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queryLoops(t) {
		if p.Predict(q) != p2.Predict(q) {
			t.Fatal("subset predictor disagrees after round trip")
		}
	}
}

func TestLoadPredictorRejectsGarbage(t *testing.T) {
	if _, err := unroll.LoadPredictor(strings.NewReader("{oops")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := unroll.LoadPredictor(strings.NewReader(`{"algorithm":"wat","model":{}}`)); err == nil {
		t.Error("expected unknown-algorithm error")
	}
	if _, err := unroll.LoadPredictor(strings.NewReader(`{"algorithm":"nn","machine":"vax","model":{}}`)); err == nil {
		t.Error("expected unknown-machine error")
	}
	if _, err := unroll.LoadPredictor(strings.NewReader(`{"algorithm":"nn","model":{}}`)); err == nil {
		t.Error("expected malformed-model error")
	}
}

func TestExplain(t *testing.T) {
	d := smallDataset(t)
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	l, err := unroll.ParseKernel(daxpy)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := p.Explain(l, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Factor != p.Predict(l) {
		t.Errorf("explanation factor %d != prediction %d", ex.Factor, p.Predict(l))
	}
	if len(ex.Neighbors) != 5 {
		t.Fatalf("neighbors = %d", len(ex.Neighbors))
	}
	// Neighbors must be sorted by distance and carry identities.
	for i := 1; i < len(ex.Neighbors); i++ {
		if ex.Neighbors[i].Dist < ex.Neighbors[i-1].Dist {
			t.Error("neighbors not sorted by distance")
		}
	}
	if ex.Neighbors[0].Benchmark == "" || ex.Neighbors[0].Name == "" {
		t.Error("neighbor identity missing")
	}
	out := ex.Render()
	if !strings.Contains(out, "nearest training loops") || !strings.Contains(out, "label") {
		t.Errorf("render:\n%s", out)
	}
	// Explanations require a near-neighbor predictor.
	svmP, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.LSSVM})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svmP.Explain(l, 3); err == nil {
		t.Error("expected error for SVM explanation")
	}
}

// TestExplainSurvivesPersistence: identities must survive the round trip.
func TestExplainSurvivesPersistence(t *testing.T) {
	d := smallDataset(t)
	p, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := unroll.LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := unroll.ParseKernel(daxpy)
	ex, err := p2.Explain(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Neighbors[0].Benchmark == "" {
		t.Error("neighbor identities lost in persistence")
	}
}
