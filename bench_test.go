// Package metaopt_test holds the benchmark harness: one testing.B target
// per paper table/figure (regenerating the same rows/series at reduced
// scale; cmd/experiments produces the full-scale output), plus ablation
// benches for the design choices called out in DESIGN.md and
// micro-benchmarks of the substrate. Key quality metrics are attached to
// each benchmark via ReportMetric.
package metaopt_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"metaopt/internal/analysis"
	"metaopt/internal/core"
	"metaopt/internal/experiments"
	"metaopt/internal/features"
	"metaopt/internal/lang"
	"metaopt/internal/loopgen"
	"metaopt/internal/machine"
	"metaopt/internal/ml"
	"metaopt/internal/ml/greedy"
	"metaopt/internal/ml/nn"
	"metaopt/internal/ml/svm"
	"metaopt/internal/ml/tree"
	"metaopt/internal/obs"
	"metaopt/internal/par"
	"metaopt/internal/sched"
	"metaopt/internal/serve"
	"metaopt/internal/sim"
	"metaopt/internal/swp"
	"metaopt/internal/transform"
	"metaopt/unroll"
	"metaopt/unroll/client"
)

// benchEnv is shared, lazily-built state so individual benchmarks measure
// only their own experiment, not corpus construction.
var (
	envOnce sync.Once
	benchE  *experiments.Env
	benchD  *ml.Dataset
	benchFS *core.FeatureSelection
)

func env(b *testing.B) (*experiments.Env, *ml.Dataset, *core.FeatureSelection) {
	b.Helper()
	envOnce.Do(func() {
		cfg := experiments.Config{
			Seed: 2005, Scale: 0.15, Runs: 10,
			SVMCap: 400, TrainCap: 400, SVMSample: 150,
		}
		benchE = experiments.NewEnv(cfg)
		var err error
		benchD, err = benchE.Dataset(false)
		if err != nil {
			panic(err)
		}
		benchFS, err = benchE.Features()
		if err != nil {
			panic(err)
		}
	})
	return benchE, benchD, benchFS
}

// BenchmarkTable2 regenerates the prediction-correctness table (LOOCV for
// NN and the LS-SVM plus the baseline heuristic) and reports the rank-1
// accuracies.
func BenchmarkTable2(b *testing.B) {
	e, _, _ := env(b)
	b.ResetTimer()
	var last *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(e)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Table.SVMAccuracy, "svm-optimal-frac")
	b.ReportMetric(last.Table.NNAccuracy, "nn-optimal-frac")
	b.ReportMetric(last.Table.HeurAccuracy, "orc-optimal-frac")
}

// BenchmarkTable3 regenerates the mutual-information feature ranking.
func BenchmarkTable3(b *testing.B) {
	e, _, _ := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates greedy forward feature selection for both
// classifiers.
func BenchmarkTable4(b *testing.B) {
	_, d, _ := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := core.DefaultSelectOptions()
		opt.SVMSample = 150
		if _, err := core.SelectFeatures(d, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 regenerates the LDA projection + near-neighbor
// illustration.
func BenchmarkFigure1(b *testing.B) {
	e, _, _ := env(b)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1(e)
		if err != nil {
			b.Fatal(err)
		}
		acc = r.NNAcc
	}
	b.ReportMetric(acc, "projected-nn-acc")
}

// BenchmarkFigure2 regenerates the 2-D SVM decision-region illustration.
func BenchmarkFigure2(b *testing.B) {
	e, _, _ := env(b)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(e)
		if err != nil {
			b.Fatal(err)
		}
		acc = r.Accuracy
	}
	b.ReportMetric(acc, "svm-2d-acc")
}

// BenchmarkFigure3 regenerates the optimal-factor histogram, including the
// labeling pass over a fresh corpus.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := loopgen.Generate(loopgen.Options{Seed: int64(i + 3), LoopsScale: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Runs = 5
		lb, err := core.CollectLabels(c, sim.NewTimer(cfg), 1)
		if err != nil {
			b.Fatal(err)
		}
		hist := lb.Histogram()
		if i == b.N-1 {
			b.ReportMetric(hist[1], "rolled-frac")
			b.ReportMetric(hist[8], "u8-frac")
		}
	}
}

// BenchmarkFigure4 regenerates the SWP-off speedup experiment and reports
// the overall improvements over the baseline.
func BenchmarkFigure4(b *testing.B) {
	e, _, _ := env(b)
	b.ResetTimer()
	var sum *core.SpeedupSummary
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(e)
		if err != nil {
			b.Fatal(err)
		}
		sum = r.Summary
	}
	b.ReportMetric(100*sum.SVMAll, "svm-overall-pct")
	b.ReportMetric(100*sum.SVMFP, "svm-fp-pct")
	b.ReportMetric(100*sum.OracleAll, "oracle-overall-pct")
}

// BenchmarkFigure5 regenerates the SWP-on speedup experiment.
func BenchmarkFigure5(b *testing.B) {
	e, _, _ := env(b)
	b.ResetTimer()
	var sum *core.SpeedupSummary
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(e)
		if err != nil {
			b.Fatal(err)
		}
		sum = r.Summary
	}
	b.ReportMetric(100*sum.SVMAll, "svm-overall-pct")
	b.ReportMetric(100*sum.OracleAll, "oracle-overall-pct")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationSVMSolver compares the LS-SVM (closed form) against the
// SMO-trained C-SVM on the same training set.
func BenchmarkAblationSVMSolver(b *testing.B) {
	_, d, fs := env(b)
	sel := d.Select(fs.Union)
	b.Run("lssvm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&svm.LSSVM{}).Train(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("smo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&svm.SMO{Seed: 1}).Train(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOutputCodes compares one-vs-rest against random
// error-correcting output codes on LOOCV accuracy.
func BenchmarkAblationOutputCodes(b *testing.B) {
	_, d, fs := env(b)
	sel := d.Select(fs.Union)
	for _, cfg := range []struct {
		name  string
		codes svm.Codes
	}{
		{"one-vs-rest", svm.OneVsRest(ml.NumClasses)},
		{"ecoc-15", svm.Random(ml.NumClasses, 15, 9)},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				preds, err := (&svm.LSSVM{Codes: cfg.codes}).LOOCV(sel)
				if err != nil {
					b.Fatal(err)
				}
				acc = ml.Accuracy(sel, preds)
			}
			b.ReportMetric(acc, "loocv-acc")
		})
	}
}

// BenchmarkAblationFeatureSet compares the full 38-feature vector against
// the selected union subset.
func BenchmarkAblationFeatureSet(b *testing.B) {
	_, d, fs := env(b)
	for _, cfg := range []struct {
		name string
		set  *ml.Dataset
	}{
		{"all-38", d},
		{"selected-union", d.Select(fs.Union)},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				preds, err := (&nn.Trainer{}).LOOCV(cfg.set)
				if err != nil {
					b.Fatal(err)
				}
				acc = ml.Accuracy(cfg.set, preds)
			}
			b.ReportMetric(acc, "loocv-acc")
		})
	}
}

// BenchmarkAblationNNRadius sweeps the near-neighbor radius around the
// paper's 0.3.
func BenchmarkAblationNNRadius(b *testing.B) {
	_, d, fs := env(b)
	sel := d.Select(fs.Union)
	for _, r := range []struct {
		name   string
		radius float64
	}{
		{"r0.15", 0.15}, {"r0.30", 0.30}, {"r0.60", 0.60},
	} {
		b.Run(r.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				preds, err := (&nn.Trainer{Radius: r.radius}).LOOCV(sel)
				if err != nil {
					b.Fatal(err)
				}
				acc = ml.Accuracy(sel, preds)
			}
			b.ReportMetric(acc, "loocv-acc")
		})
	}
}

// BenchmarkAblationClassifiers is the related-work comparison: the paper's
// two learners against the boosted decision trees of Monsifrot et al. and
// a single CART tree, all on the same LOOCV protocol.
func BenchmarkAblationClassifiers(b *testing.B) {
	_, d, fs := env(b)
	sel := d.Select(fs.Union)
	for _, cfg := range []struct {
		name string
		tr   ml.Trainer
	}{
		{"nn", &nn.Trainer{}},
		{"lssvm", &svm.LSSVM{}},
		{"cart", &tree.Trainer{}},
		{"boosted-tree", &tree.Boost{Rounds: 15, MaxDepth: 4}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				preds, err := ml.LOOCV(cfg.tr, sel)
				if err != nil {
					b.Fatal(err)
				}
				acc = ml.Accuracy(sel, preds)
			}
			b.ReportMetric(acc, "loocv-acc")
		})
	}
}

// BenchmarkAblationRegression compares classification against the
// regression extension (the paper's future-work direction).
func BenchmarkAblationRegression(b *testing.B) {
	_, d, fs := env(b)
	sel := d.Select(fs.Union)
	for _, cfg := range []struct {
		name string
		tr   ml.Trainer
	}{
		{"classify", &svm.LSSVM{}},
		{"regress", &svm.Regression{}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				preds, err := ml.LOOCV(cfg.tr, sel)
				if err != nil {
					b.Fatal(err)
				}
				acc = ml.Accuracy(sel, preds)
			}
			b.ReportMetric(acc, "loocv-acc")
		})
	}
}

// BenchmarkAblationNoise measures how label noise degrades LOOCV accuracy:
// labels are collected at increasing measurement-noise levels.
func BenchmarkAblationNoise(b *testing.B) {
	c, err := loopgen.Generate(loopgen.Options{Seed: 17, LoopsScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	for _, lvl := range []struct {
		name  string
		noise float64
		bias  float64
	}{
		{"clean", 0, 0}, {"paper", 0.03, 0.02}, {"noisy", 0.08, 0.05},
	} {
		b.Run(lvl.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.Runs = 10
				cfg.Noise = lvl.noise
				cfg.BiasNoise = lvl.bias
				t := sim.NewTimer(cfg)
				lb, err := core.CollectLabels(c, t, 5)
				if err != nil {
					b.Fatal(err)
				}
				d := lb.Dataset(t)
				preds, err := (&nn.Trainer{}).LOOCV(d)
				if err != nil {
					b.Fatal(err)
				}
				acc = ml.Accuracy(d, preds)
			}
			b.ReportMetric(acc, "loocv-acc")
		})
	}
}

// --- Parallel evaluation engine ------------------------------------------

// runWorkers runs the body under forced-serial and full-pool worker
// limits, so the parallel engine's wall-clock win (and its absence of one
// on a single-core box) shows up directly in the bench output.
func runWorkers(b *testing.B, body func(b *testing.B)) {
	for _, w := range []struct {
		name  string
		limit int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(w.name, func(b *testing.B) {
			restore := par.SetLimit(w.limit)
			defer restore()
			b.ResetTimer()
			body(b)
			b.ReportMetric(float64(w.limit), "workers")
		})
	}
}

// BenchmarkLOOCVParallel measures slow-path leave-one-out folds (the CART
// trainer has no exact shortcut) across the worker pool.
func BenchmarkLOOCVParallel(b *testing.B) {
	_, d, fs := env(b)
	sel := d.Select(fs.Union)
	tr := &tree.Trainer{MaxDepth: 4}
	runWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ml.LOOCV(tr, sel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLOOCVParallelNoObs is BenchmarkLOOCVParallel with telemetry
// recording disabled — compare the two to measure instrumentation overhead
// (the obs contract is < 2%; the per-item work here is a full CART
// training, so the two timestamp reads and handful of atomic adds per fold
// disappear into the noise).
func BenchmarkLOOCVParallelNoObs(b *testing.B) {
	_, d, fs := env(b)
	sel := d.Select(fs.Union)
	tr := &tree.Trainer{MaxDepth: 4}
	restore := obs.SetEnabled(false)
	defer restore()
	runWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ml.LOOCV(tr, sel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsPrimitives prices the individual telemetry operations that
// sit on hot paths, so a regression in the instrumentation layer itself is
// visible in the perf trajectory.
func BenchmarkObsPrimitives(b *testing.B) {
	c := obs.C("bench.counter")
	h := obs.H("bench.hist", obs.ExpBounds(1_000, 4, 16))
	b.Run("counter_add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("histogram_observe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i))
		}
	})
	b.Run("span_begin_end", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := obs.Begin("bench.span")
			sp.End()
		}
	})
}

// BenchmarkGreedyParallel measures greedy forward selection with its
// per-candidate-feature scoring fanned out over the pool.
func BenchmarkGreedyParallel(b *testing.B) {
	_, d, _ := env(b)
	runWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := greedy.Select(&nn.Trainer{OneNN: true}, d, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpeedupFolds measures the Figure 4 leave-one-benchmark-out
// folds running concurrently against the shared timer cache.
func BenchmarkSpeedupFolds(b *testing.B) {
	e, d, fs := env(b)
	lb, err := e.Labels(false)
	if err != nil {
		b.Fatal(err)
	}
	c, err := e.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultSpeedupOptions()
	opt.TrainCap = 250
	runWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Speedups(c, lb, d, fs.Union, e.Timer(false), opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Substrate micro-benchmarks ------------------------------------------

const daxpySrc = `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`

func daxpyLoop(b *testing.B) *unroll.Loop {
	b.Helper()
	k, err := lang.ParseKernel(daxpySrc)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkFrontend measures parse + lowering.
func BenchmarkFrontend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k, err := lang.ParseKernel(daxpySrc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lang.Lower(k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnrollTransform measures unrolling by 8 with cleanups.
func BenchmarkUnrollTransform(b *testing.B) {
	l := daxpyLoop(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := transform.Unroll(l, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtract measures the 38-feature extraction.
func BenchmarkFeatureExtract(b *testing.B) {
	l := daxpyLoop(b)
	m := machine.Itanium2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.Extract(l, m)
	}
}

// BenchmarkListSchedule measures list scheduling of an unrolled body.
func BenchmarkListSchedule(b *testing.B) {
	l := daxpyLoop(b)
	u8, _, err := transform.Unroll(l, 8)
	if err != nil {
		b.Fatal(err)
	}
	m := machine.Itanium2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := analysis.Build(u8, m)
		sched.List(g)
	}
}

// BenchmarkModuloSchedule measures software pipelining of an unrolled body.
func BenchmarkModuloSchedule(b *testing.B) {
	l := daxpyLoop(b)
	u4, _, err := transform.Unroll(l, 4)
	if err != nil {
		b.Fatal(err)
	}
	m := machine.Itanium2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := analysis.Build(u4, m)
		if _, err := swp.Schedule(g, g.MII()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilePipeline measures the full compile-and-price pipeline
// (all eight factors) for one loop.
func BenchmarkCompilePipeline(b *testing.B) {
	l := daxpyLoop(b)
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Noise = 0
		t := sim.NewTimer(cfg)
		for u := 1; u <= transform.MaxFactor; u++ {
			if _, err := t.Cycles(l, u); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMeasureAll measures the labeling path for one loop: all eight
// factors measured under the paper's noisy-median protocol against a fresh
// timer, so per-loop work (validation, rolled-body recurrence, remainder
// schedule) is paid rather than cached from a previous iteration.
func BenchmarkMeasureAll(b *testing.B) {
	l := daxpyLoop(b)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		t := sim.NewTimer(cfg)
		if _, _, err := t.MeasureAll(l, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNPredict measures a single near-neighbor query against the
// benchmark dataset.
func BenchmarkNNPredict(b *testing.B) {
	_, d, fs := env(b)
	sel := d.Select(fs.Union)
	c, err := (&nn.Trainer{}).Train(sel)
	if err != nil {
		b.Fatal(err)
	}
	q := sel.Examples[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Predict(q)
	}
}

// BenchmarkLSSVMPredict measures a single LS-SVM query.
func BenchmarkLSSVMPredict(b *testing.B) {
	_, d, fs := env(b)
	sel := d.Select(fs.Union)
	c, err := (&svm.LSSVM{}).Train(sel)
	if err != nil {
		b.Fatal(err)
	}
	q := sel.Examples[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Predict(q)
	}
}

// --- Serve-path predictors -----------------------------------------------

// serveBenchEnv is the serve-path harness: one trained predictor, its
// compiled lowering, and a corpus-derived query set, built once.
var (
	serveOnce    sync.Once
	servePred    *unroll.Predictor
	serveComp    *unroll.CompiledPredictor
	serveQueries [][]float64
	serveErr     error
)

func serveEnv(b *testing.B) (*unroll.Predictor, *unroll.CompiledPredictor, [][]float64) {
	b.Helper()
	serveOnce.Do(func() {
		c, err := unroll.GenerateCorpus(5, 0.08)
		if err != nil {
			serveErr = err
			return
		}
		d, err := unroll.CollectDataset(c, unroll.CollectOptions{Seed: 1, Runs: 5})
		if err != nil {
			serveErr = err
			return
		}
		servePred, err = unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
		if err != nil {
			serveErr = err
			return
		}
		serveComp, err = unroll.Compile(servePred)
		if err != nil {
			serveErr = err
			return
		}
		qc, err := unroll.GenerateCorpus(2005, 0.3)
		if err != nil {
			serveErr = err
			return
		}
		m := unroll.Itanium2()
		for _, bm := range qc.Benchmarks {
			for _, l := range bm.Loops {
				serveQueries = append(serveQueries, unroll.Features(l, m))
				if len(serveQueries) == 256 {
					return
				}
			}
		}
	})
	if serveErr != nil {
		b.Fatal(serveErr)
	}
	return servePred, serveComp, serveQueries
}

// BenchmarkPredictSingle prices one serve-time feature-vector prediction:
// the interpreted classifier against its compiled lowering's exact
// (bit-identical, zero-allocation) path.
func BenchmarkPredictSingle(b *testing.B) {
	pred, comp, queries := serveEnv(b)
	q := queries[0]
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pred.PredictFeatures(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			comp.Predict(q)
		}
	})
}

// BenchmarkPredictBatch prices a whole serve micro-batch (256 queries per
// op): per-query interpreted prediction against the compiled float32
// blocked distance path.
func BenchmarkPredictBatch(b *testing.B) {
	pred, comp, queries := serveEnv(b)
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := pred.PredictFeatures(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		out := make([]int, len(queries))
		for i := 0; i < b.N; i++ {
			var err error
			out, err = comp.PredictFeaturesBatch(queries, out)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeTracedRequest prices one end-to-end serve request —
// through the HTTP mux, admission queue, worker, and compiled predictor —
// with full observability (request trace, SLO accounting, metrics)
// against the same path with telemetry disabled. The spread between the
// two is the observability overhead the serving layer pays per request.
func BenchmarkServeTracedRequest(b *testing.B) {
	pred, _, queries := serveEnv(b)
	srv, err := serve.New(serve.Config{
		Model:          pred,
		CacheSize:      -1, // every request must reach the model
		Workers:        2,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	h := srv.Handler()
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		bodies[i], err = json.Marshal(client.PredictRequest{Features: q})
		if err != nil {
			b.Fatal(err)
		}
	}
	drive := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(bodies[i%len(bodies)]))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
			}
		}
	}
	b.Run("traced", drive)
	b.Run("untraced", func(b *testing.B) {
		restore := obs.SetEnabled(false)
		defer restore()
		drive(b)
	})
}

// BenchmarkAblationContext measures the effect of the hidden program
// context (ContextVar): with no hidden state the problem is almost fully
// feature-determined; the default setting caps accuracy near the paper's.
func BenchmarkAblationContext(b *testing.B) {
	c, err := loopgen.Generate(loopgen.Options{Seed: 19, LoopsScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	for _, lvl := range []struct {
		name  string
		v     float64
		noise bool
	}{
		{"deterministic", 0, false}, {"context-only", 0.55, false},
		{"paper-like", 0.55, true}, {"strong", 1.0, true},
	} {
		b.Run(lvl.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.Runs = 10
				cfg.ContextVar = lvl.v
				if !lvl.noise {
					cfg.Noise = 0
					cfg.BiasNoise = 0
				}
				t := sim.NewTimer(cfg)
				lb, err := core.CollectLabels(c, t, 5)
				if err != nil {
					b.Fatal(err)
				}
				d := lb.Dataset(t)
				preds, err := (&svm.LSSVM{}).LOOCV(d)
				if err != nil {
					b.Fatal(err)
				}
				acc = ml.Accuracy(d, preds)
			}
			b.ReportMetric(acc, "loocv-acc")
		})
	}
}
