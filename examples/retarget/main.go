// Retargeting: the paper's economic argument is that a learned heuristic
// retunes itself after an architectural change — just collect labels on the
// new machine and retrain, instead of months of hand-tuning. This example
// trains one predictor for the Itanium-2-class model and one for a narrow
// embedded core, and shows how their decisions diverge on the same loops.
//
//	go run ./examples/retarget
package main

import (
	"fmt"
	"log"

	"metaopt/unroll"
)

var kernels = []string{
	`kernel stream lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 2048 { y[i] = y[i] + a * x[i]; }
}`,
	`kernel stencil5 lang=fortran {
	double a[], b[];
	for i = 2 .. 2046 {
		b[i] = 0.1*a[i-2] + 0.2*a[i-1] + a[i] + 0.2*a[i+1] + 0.1*a[i+2];
	}
}`,
	`kernel reduce lang=fortran {
	double a[], b[];
	double s;
	for i = 0 .. 4096 { s = s + a[i]*b[i]; }
}`,
	`kernel shortloop lang=c {
	double x[], y[];
	noalias;
	for i = 0 .. 24 { y[i] = x[i] * 3.0; }
}`,
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func trainFor(m *unroll.Machine, name string) *unroll.Predictor {
	corpus, err := unroll.GenerateCorpus(7, 0.12)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := unroll.CollectDataset(corpus, unroll.CollectOptions{Machine: m, Seed: 7, Runs: 10})
	if err != nil {
		log.Fatal(err)
	}
	feats, err := unroll.SelectFeatures(ds, 7)
	if err != nil {
		log.Fatal(err)
	}
	p, err := unroll.Train(ds, unroll.TrainOptions{Algorithm: unroll.LSSVM, Machine: m, Features: feats})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained for %-10s on %d labeled loops\n", name, ds.Len())
	return p
}

func main() {
	fmt.Println("labeling the corpus on three machines (the paper's 'fully automated' retuning)...")
	machines := []*unroll.Machine{unroll.Itanium2(), unroll.Embedded(), unroll.Wide()}
	var preds []*unroll.Predictor
	var timers []*unroll.Timer
	for _, m := range machines {
		preds = append(preds, trainFor(m, m.Name))
		timers = append(timers, unroll.NewTimer(m, false))
	}

	fmt.Printf("\n%-12s", "loop")
	for _, m := range machines {
		fmt.Printf(" %9s %9s", m.Name[:minInt(9, len(m.Name))], "best")
	}
	fmt.Println()
	for _, src := range kernels {
		loop, err := unroll.ParseKernel(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", loop.Name)
		for i := range machines {
			best, _, err := timers[i].Best(loop)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9d %9d", preds[i].Predict(loop), best)
		}
		fmt.Println()
	}
	fmt.Println("\nthe machines disagree about the best factors; retraining the")
	fmt.Println("predictor on fresh labels tracks the new target with zero hand-tuning")
	fmt.Println("(the paper's retuning argument, Section 4.5).")
}
