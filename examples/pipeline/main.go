// Pipeline: why unrolling still matters once a compiler software-pipelines.
// A loop with three FP operations on a two-FP-unit machine has a resource
// bound of 3/2 cycles per iteration — but an initiation interval must be an
// integer, so the rolled loop runs at II=2, wasting half a cycle every
// iteration. Unrolling by two makes the unrolled body's bound 3 cycles for
// two iterations: the "fractional II" effect behind the paper's Figure 5
// experiment. This example prints the actual modulo schedules.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"metaopt/internal/analysis"
	"metaopt/internal/lang"
	"metaopt/internal/machine"
	"metaopt/internal/swp"
	"metaopt/internal/transform"
)

const kernel = `
kernel f3 lang=fortran {
	double a[], b[], c[], d[];
	for i = 0 .. 4096 {
		d[i] = a[i]*b[i] + a[i]*c[i] + b[i]*c[i];
	}
}`

func main() {
	k, err := lang.ParseKernel(kernel)
	if err != nil {
		log.Fatal(err)
	}
	rolled, err := lang.Lower(k)
	if err != nil {
		log.Fatal(err)
	}
	m := machine.Itanium2()

	fmt.Println("three FP ops per iteration, two FP units: resource bound = 3/2 cycles/iter")
	fmt.Println()
	for _, u := range []int{1, 2, 4} {
		body, _, err := transform.Unroll(rolled, u)
		if err != nil {
			log.Fatal(err)
		}
		g := analysis.Build(body, m)
		r, err := swp.Schedule(g, g.MII())
		if err != nil {
			log.Fatal(err)
		}
		if err := r.Verify(g); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("unroll %d: II=%d over %d iterations -> %.2f cycles per source iteration\n",
			u, r.II, u, float64(r.II)/float64(u))
		if u <= 2 {
			fmt.Println(r.Dump(g))
		}
	}
	fmt.Println("the learned classifier discovers this trade-off from labels alone;")
	fmt.Println("ORC's engineers re-derived it by hand for every release (Section 1).")
}
