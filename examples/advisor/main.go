// Advisor: tune a small numerical library. For every kernel the example
// compares three compilation policies — the hand-written baseline
// heuristic, the learned classifier, and the measured best factor — and
// totals the cycles each policy costs, the per-library view of the paper's
// Figure 4 experiment.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"metaopt/unroll"
)

// The "library": a blas-like bundle of kernels in one source file.
const library = `
kernel axpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}
kernel dot lang=c {
	double x[], y[];
	double s;
	noalias;
	for i = 0 .. 4096 { s = s + x[i]*y[i]; }
}
kernel scale lang=c {
	param double a;
	double x[];
	noalias;
	for i = 0 .. 2048 { x[i] = x[i] * a; }
}
kernel smooth lang=c {
	double a[], b[];
	noalias;
	for i = 1 .. 2047 { b[i] = 0.25*a[i-1] + 0.5*a[i] + 0.25*a[i+1]; }
}
kernel normclip lang=c {
	double x[];
	double m;
	noalias;
	for i = 0 .. 1024 {
		if (x[i] > m) { m = x[i]; }
	}
}
kernel ratio lang=c {
	double num[], den[], out[];
	noalias;
	for i = 0 .. 512 { out[i] = num[i] / (den[i] + 1.0); }
}
kernel gather lang=c {
	double src[], dst[];
	int idx[];
	for i = 0 .. 1024 { dst[i] = src[idx[i]]; }
}
`

func main() {
	loops, err := unroll.ParseFile(library)
	if err != nil {
		log.Fatal(err)
	}
	mach := unroll.Itanium2()

	fmt.Println("training the advisor (small corpus)...")
	corpus, err := unroll.GenerateCorpus(3, 0.12)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := unroll.CollectDataset(corpus, unroll.CollectOptions{Seed: 3, Runs: 10})
	if err != nil {
		log.Fatal(err)
	}
	feats, err := unroll.SelectFeatures(ds, 3)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := unroll.Train(ds, unroll.TrainOptions{Algorithm: unroll.LSSVM, Features: feats})
	if err != nil {
		log.Fatal(err)
	}

	timer := unroll.NewTimer(mach, false)
	fmt.Printf("\n%-10s %10s %10s %10s   %s\n", "kernel", "heuristic", "learned", "best", "cycles h/l/best")
	var totH, totL, totB int64
	for _, l := range loops {
		h := unroll.Heuristic(l, mach, false)
		lf := pred.Predict(l)
		best, timings, err := timer.Best(l)
		if err != nil {
			log.Fatal(err)
		}
		th, tl, tb := timings[h].Cycles, timings[lf].Cycles, timings[best].Cycles
		totH += th
		totL += tl
		totB += tb
		fmt.Printf("%-10s %10d %10d %10d   %d / %d / %d\n", l.Name, h, lf, best, th, tl, tb)
	}
	fmt.Printf("\nlibrary totals: heuristic %d cycles, learned %d, best %d\n", totH, totL, totB)
	fmt.Printf("learned policy recovers %.1f%% of the headroom the heuristic leaves\n",
		100*float64(totH-totL)/float64(maxInt64(totH-totB, 1)))
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
