// Outliers: the paper suggests using the near-neighbor vote as a
// confidence signal — "one can imagine a tool that automatically detects
// outliers by setting low confidence examples aside. An engineer could
// then visually inspect outlier loops to determine why they are hard to
// classify." This example is that tool: it ranks a bag of query loops by
// neighborhood confidence and prints the loops an engineer should look at.
//
//	go run ./examples/outliers
package main

import (
	"fmt"
	"log"
	"sort"

	"metaopt/unroll"
)

const queries = `
kernel plain_stream lang=c {
	double x[], y[];
	noalias;
	for i = 0 .. 2048 { y[i] = x[i] * 2.0; }
}
kernel weird_mix lang=c {
	double a[], b[];
	int k[];
	double s;
	for i = 0 .. 96 {
		if (k[i] != 0) { s = s + a[k[i]] / (b[i] + 1.5); }
		b[2*i] = s;
		if (s > 9000.0) break;
	}
}
kernel common_reduce lang=fortran {
	double a[], b[];
	double s;
	for i = 0 .. 1024 { s = s + a[i]*b[i]; }
}
kernel odd_strides lang=c {
	double m[], v[], o[];
	for i = 0 .. 128 {
		o[i] = m[64*i] * v[i] + m[64*i+32] / (v[2*i] + 1.0);
		call log_progress();
	}
}
`

func main() {
	fmt.Println("building the near-neighbor database...")
	corpus, err := unroll.GenerateCorpus(11, 0.12)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := unroll.CollectDataset(corpus, unroll.CollectOptions{Seed: 11, Runs: 10})
	if err != nil {
		log.Fatal(err)
	}
	feats, err := unroll.SelectFeatures(ds, 11)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := unroll.Train(ds, unroll.TrainOptions{Algorithm: unroll.NearNeighbor, Features: feats})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d labeled loops, %d selected features\n\n", ds.Len(), len(feats))

	loops, err := unroll.ParseFile(queries)
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		name      string
		factor    int
		neighbors int
		agreement float64
	}
	var rows []row
	for _, l := range loops {
		n, agree, ok := pred.Confidence(l)
		if !ok {
			log.Fatal("predictor lost its confidence signal")
		}
		rows = append(rows, row{l.Name, pred.Predict(l), n, agree})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].neighbors != rows[j].neighbors {
			return rows[i].neighbors < rows[j].neighbors
		}
		return rows[i].agreement < rows[j].agreement
	})

	fmt.Printf("%-16s %8s %10s %10s   %s\n", "loop", "predict", "neighbors", "agreement", "verdict")
	for _, r := range rows {
		verdict := "confident"
		switch {
		case r.neighbors == 0:
			verdict = "OUTLIER: nothing like it in the corpus — inspect by hand"
		case r.agreement < 0.5:
			verdict = "LOW CONFIDENCE: neighborhood disagrees — inspect"
		}
		fmt.Printf("%-16s %8d %10d %9.0f%%   %s\n", r.name, r.factor, r.neighbors, 100*r.agreement, verdict)
	}
}
