// Quickstart: parse a loop kernel, inspect its features, sweep unroll
// factors on the machine model, then train a classifier on a small corpus
// and let it pick the factor.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"metaopt/unroll"
)

const daxpy = `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 {
		y[i] = y[i] + a * x[i];
	}
}`

func main() {
	// 1. Compile the kernel to the loop IR.
	loop, err := unroll.ParseKernel(daxpy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %s: %d ops, trip count %d\n", loop.Name, loop.NumOps(), loop.TripCount)

	// 2. A few of the 38 static features the classifiers see.
	mach := unroll.Itanium2()
	v := unroll.Features(loop, mach)
	for _, name := range []string{"num_ops", "num_fp_ops", "num_mem_ops", "critical_path", "rec_mii"} {
		fmt.Printf("  feature %-14s = %.1f\n", name, v[unroll.FeatureIndex(name)])
	}

	// 3. Ground truth on the machine model: time every unroll factor.
	timer := unroll.NewTimer(mach, false)
	best, timings, err := timer.Best(loop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nunroll sweep (software pipelining off):")
	for u := 1; u <= unroll.MaxFactor; u++ {
		mark := "  "
		if u == best {
			mark = "->"
		}
		fmt.Printf("%s u=%d: %5.2f cycles/iteration\n", mark, u, timings[u].PerIter)
	}
	fmt.Printf("baseline heuristic would pick u=%d\n", unroll.Heuristic(loop, mach, false))

	// 4. Train a classifier on a small labeled corpus and let it decide.
	fmt.Println("\ncollecting a small training corpus (a few seconds)...")
	corpus, err := unroll.GenerateCorpus(1, 0.12)
	if err != nil {
		log.Fatal(err)
	}
	dataset, err := unroll.CollectDataset(corpus, unroll.CollectOptions{Seed: 1, Runs: 10})
	if err != nil {
		log.Fatal(err)
	}
	feats, err := unroll.SelectFeatures(dataset, 1)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := unroll.Train(dataset, unroll.TrainOptions{Algorithm: unroll.LSSVM, Features: feats})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained LS-SVM on %d loops using %d selected features\n", dataset.Len(), len(feats))
	fmt.Printf("classifier predicts u=%d (measured best: u=%d)\n", pred.Predict(loop), best)
}
